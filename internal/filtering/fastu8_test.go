package filtering

import (
	"context"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

// noiseU8Image builds a reproducible random 8-bit image.
func noiseU8Image(rng *rand.Rand, w, h, c int) *imgcore.U8Image {
	u, err := imgcore.NewU8(w, h, c)
	if err != nil {
		panic(err)
	}
	for i := range u.Pix {
		u.Pix[i] = uint8(rng.Intn(256))
	}
	return u
}

// u8FloatPairs returns the three fixed-point rank filters alongside the
// float64 kernels they must match bit-for-bit on 8-bit data. The u8
// outputs are widened through FromU8 where needed so both sides compare
// as float64 planes.
type u8FilterPair struct {
	name  string
	u8    func(*imgcore.U8Image, int) (*imgcore.Image, error)
	float func(*imgcore.Image, int) (*imgcore.Image, error)
}

func u8FloatPairs() []u8FilterPair {
	return []u8FilterPair{
		{"min",
			func(u *imgcore.U8Image, size int) (*imgcore.Image, error) {
				out, err := MinimumU8(u, size)
				if err != nil {
					return nil, err
				}
				return imgcore.FromU8(out)
			},
			Minimum},
		{"max",
			func(u *imgcore.U8Image, size int) (*imgcore.Image, error) {
				out, err := MaximumU8(u, size)
				if err != nil {
					return nil, err
				}
				return imgcore.FromU8(out)
			},
			Maximum},
		{"median",
			func(u *imgcore.U8Image, size int) (*imgcore.Image, error) {
				return MedianU8(u, size)
			},
			Median},
	}
}

// TestU8FiltersBitEqualFloat is the central exactness pin of the
// fixed-point rank kernels: on 8-bit inputs, MinimumU8/MaximumU8/MedianU8
// must be BIT-IDENTICAL to the float64 fast kernels across odd and even
// windows, both channel counts, and non-square geometries.
func TestU8FiltersBitEqualFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sizes := [][2]int{{2, 3}, {7, 5}, {16, 16}, {31, 29}, {64, 48}, {97, 11}}
	for _, wh := range sizes {
		for _, c := range []int{1, 3} {
			u := noiseU8Image(rng, wh[0], wh[1], c)
			wide, err := imgcore.FromU8(u)
			if err != nil {
				t.Fatal(err)
			}
			for _, window := range []int{2, 3, 4, 5, 7} {
				for _, p := range u8FloatPairs() {
					want, err := p.float(wide, window)
					if err != nil {
						t.Fatalf("%s float %dx%dx%d w=%d: %v", p.name, wh[0], wh[1], c, window, err)
					}
					got, err := p.u8(u, window)
					if err != nil {
						t.Fatalf("%s u8 %dx%dx%d w=%d: %v", p.name, wh[0], wh[1], c, window, err)
					}
					if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
						t.Fatalf("%s %dx%dx%d w=%d: sample %d differs: u8 %v vs float %v",
							p.name, wh[0], wh[1], c, window, i, got.Pix[i], want.Pix[i])
					}
				}
			}
		}
	}
}

// TestU8FiltersDegenerateGeometry pins the clamp-border corner cases the
// fuzzer also walks: windows at least as large as the image, single-row
// and single-column images, and even-size anchoring off the clamp border.
func TestU8FiltersDegenerateGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	cases := []struct {
		w, h, c, window int
	}{
		{4, 4, 1, 4},  // window == image
		{4, 3, 3, 5},  // window > both dimensions, odd
		{3, 5, 1, 8},  // window much larger, even
		{1, 1, 1, 3},  // single pixel
		{1, 9, 3, 2},  // single column, even window anchors right of it
		{1, 9, 1, 5},  // single column, odd window
		{11, 1, 3, 4}, // single row, even window anchors below it
		{11, 1, 1, 7}, // single row, odd window
		{6, 6, 1, 6},  // even window == image
		{5, 2, 3, 2},  // minimal even window on a shallow image
		{2, 7, 1, 3},  // odd window wider than the image
	}
	for _, tc := range cases {
		u := noiseU8Image(rng, tc.w, tc.h, tc.c)
		wide, err := imgcore.FromU8(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range u8FloatPairs() {
			want, err := p.float(wide, tc.window)
			if err != nil {
				t.Fatalf("%s float %dx%dx%d w=%d: %v", p.name, tc.w, tc.h, tc.c, tc.window, err)
			}
			got, err := p.u8(u, tc.window)
			if err != nil {
				t.Fatalf("%s u8 %dx%dx%d w=%d: %v", p.name, tc.w, tc.h, tc.c, tc.window, err)
			}
			if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
				t.Fatalf("%s %dx%dx%d w=%d: sample %d differs: u8 %v vs float %v",
					p.name, tc.w, tc.h, tc.c, tc.window, i, got.Pix[i], want.Pix[i])
			}
		}
		want, err := Box(wide, tc.window)
		if err != nil {
			t.Fatalf("box float %dx%dx%d w=%d: %v", tc.w, tc.h, tc.c, tc.window, err)
		}
		got, err := BoxU8(u, tc.window)
		if err != nil {
			t.Fatalf("box u8 %dx%dx%d w=%d: %v", tc.w, tc.h, tc.c, tc.window, err)
		}
		for i := range want.Pix {
			if !testutil.ApproxEqual(got.Pix[i], want.Pix[i], 1e-12, 1e-9) {
				t.Fatalf("box %dx%dx%d w=%d sample %d: u8 %v vs float %v",
					tc.w, tc.h, tc.c, tc.window, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

// TestBoxU8WithinToleranceOfFloat pins the fixed-point box contract: the
// int32 path sums exactly and rounds only at the final division, so it
// must agree with the float64 running-sum box within 1e-12 relative /
// 1e-9 absolute — the same contract boxFilter carries against boxNaive.
func TestBoxU8WithinToleranceOfFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, wh := range [][2]int{{5, 3}, {17, 23}, {32, 32}, {41, 19}, {128, 64}} {
		for _, c := range []int{1, 3} {
			u := noiseU8Image(rng, wh[0], wh[1], c)
			wide, err := imgcore.FromU8(u)
			if err != nil {
				t.Fatal(err)
			}
			for _, window := range []int{2, 3, 5, 8} {
				want, err := Box(wide, window)
				if err != nil {
					t.Fatal(err)
				}
				got, err := BoxU8(u, window)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Pix {
					if !testutil.ApproxEqual(got.Pix[i], want.Pix[i], 1e-12, 1e-9) {
						t.Fatalf("box %dx%dx%d w=%d sample %d: u8 %v vs float %v (Δ=%v)",
							wh[0], wh[1], c, window, i, got.Pix[i], want.Pix[i],
							got.Pix[i]-want.Pix[i])
					}
				}
			}
		}
	}
}

// TestBoxU8ExactOnExactWindows: when size² divides every window sum the
// fixed-point box is exact, so a constant image must come back
// bit-identical — a stronger property than the float64 path guarantees.
func TestBoxU8ExactOnExactWindows(t *testing.T) {
	u, err := imgcore.NewU8(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u.Pix {
		u.Pix[i] = 200
	}
	got, err := BoxU8(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Pix {
		if !testutil.BitEqual(v, 200) {
			t.Fatalf("constant image sample %d = %v, want exactly 200", i, v)
		}
	}
}

// TestU8FiltersWideWindowFallback pins the overflow-guard fallbacks: a
// median window wider than the uint16 bin capacity must still agree with
// the float64 median (it silently reroutes through FromU8).
func TestU8FiltersWideWindowFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	u := noiseU8Image(rng, 9, 7, 1)
	wide, err := imgcore.FromU8(u)
	if err != nil {
		t.Fatal(err)
	}
	window := maxU8MedianWindow + 2
	want, err := Median(wide, window)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MedianU8(u, window)
	if err != nil {
		t.Fatal(err)
	}
	if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
		t.Fatalf("median fallback sample %d differs: %v vs %v", i, got.Pix[i], want.Pix[i])
	}
}

// TestU8FiltersSerialParallelEquivalence: band decomposition of the
// fixed-point sweeps must be bit-identical across worker counts.
func TestU8FiltersSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	u := noiseU8Image(rng, 64, 48, 3)
	for _, window := range []int{2, 5} {
		type run struct {
			name string
			fn   func(...parallel.Option) ([]float64, error)
		}
		runs := []run{
			{"min", func(po ...parallel.Option) ([]float64, error) {
				out, err := minMaxFilterU8(context.Background(), u, window, false, po...)
				if err != nil {
					return nil, err
				}
				wide, err := imgcore.FromU8(out)
				if err != nil {
					return nil, err
				}
				return wide.Pix, nil
			}},
			{"max", func(po ...parallel.Option) ([]float64, error) {
				out, err := minMaxFilterU8(context.Background(), u, window, true, po...)
				if err != nil {
					return nil, err
				}
				wide, err := imgcore.FromU8(out)
				if err != nil {
					return nil, err
				}
				return wide.Pix, nil
			}},
			{"median", func(po ...parallel.Option) ([]float64, error) {
				out, err := medianFilterU8(context.Background(), u, window, po...)
				if err != nil {
					return nil, err
				}
				return out.Pix, nil
			}},
			{"box", func(po ...parallel.Option) ([]float64, error) {
				out, err := boxFilterU8(context.Background(), u, window, po...)
				if err != nil {
					return nil, err
				}
				return out.Pix, nil
			}},
		}
		for _, r := range runs {
			want, err := r.fn(parallel.Workers(1), parallel.Grain(1))
			if err != nil {
				t.Fatalf("%s serial: %v", r.name, err)
			}
			for _, workers := range []int{2, 4, 7} {
				got, err := r.fn(parallel.Workers(workers), parallel.Grain(1))
				if err != nil {
					t.Fatalf("%s workers=%d: %v", r.name, workers, err)
				}
				if i := testutil.FirstDiff(got, want); i != -1 {
					t.Fatalf("%s w=%d workers=%d: sample %d differs", r.name, window, workers, i)
				}
			}
		}
	}
}

// TestU8FiltersValidation pins the fixed-point entry points' error paths.
func TestU8FiltersValidation(t *testing.T) {
	u := noiseU8Image(rand.New(rand.NewSource(76)), 4, 4, 1)
	for _, size := range []int{0, 1, -3} {
		if _, err := MinimumU8(u, size); err == nil {
			t.Errorf("MinimumU8(size=%d) = nil error", size)
		}
		if _, err := MaximumU8(u, size); err == nil {
			t.Errorf("MaximumU8(size=%d) = nil error", size)
		}
		if _, err := MedianU8(u, size); err == nil {
			t.Errorf("MedianU8(size=%d) = nil error", size)
		}
		if _, err := BoxU8(u, size); err == nil {
			t.Errorf("BoxU8(size=%d) = nil error", size)
		}
	}
	empty := &imgcore.U8Image{}
	if _, err := MinimumU8(empty, 2); err == nil {
		t.Error("MinimumU8(empty) = nil error")
	}
	if _, err := MedianU8(empty, 2); err == nil {
		t.Error("MedianU8(empty) = nil error")
	}
	if _, err := BoxU8(empty, 2); err == nil {
		t.Error("BoxU8(empty) = nil error")
	}
}

// TestU8FiltersDoNotMutateInput covers the fixed-point sweeps' aliasing.
func TestU8FiltersDoNotMutateInput(t *testing.T) {
	u := noiseU8Image(rand.New(rand.NewSource(77)), 9, 7, 3)
	snapshot := append([]uint8(nil), u.Pix...)
	check := func(name string) {
		t.Helper()
		for i := range snapshot {
			if u.Pix[i] != snapshot[i] {
				t.Fatalf("%s mutated its input at sample %d", name, i)
			}
		}
	}
	if _, err := MinimumU8(u, 3); err != nil {
		t.Fatal(err)
	}
	check("MinimumU8")
	if _, err := MaximumU8(u, 3); err != nil {
		t.Fatal(err)
	}
	check("MaximumU8")
	if _, err := MedianU8(u, 3); err != nil {
		t.Fatal(err)
	}
	check("MedianU8")
	if _, err := BoxU8(u, 3); err != nil {
		t.Fatal(err)
	}
	check("BoxU8")
}

// benchmarkU8Filter256 runs one fixed-point filter at 256×256×3, window 5,
// single worker — the same shape as the float64 Serial benchmarks so each
// U8/float pair reads off directly in bench output.
func benchmarkU8Filter256(b *testing.B, fn func(*imgcore.U8Image) error) {
	rng := rand.New(rand.NewSource(5))
	u := noiseU8Image(rng, 256, 256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinFilterU8256 is the uint8 vHGW minimum at window 5; its
// float64 counterpart is BenchmarkMinFilterFloat256.
func BenchmarkMinFilterU8256(b *testing.B) {
	benchmarkU8Filter256(b, func(u *imgcore.U8Image) error {
		_, err := minMaxFilterU8(context.Background(), u, 5, false, parallel.Workers(1))
		return err
	})
}

// BenchmarkMinFilterFloat256 is the float64 vHGW minimum at window 5 — the
// direct baseline for BenchmarkMinFilterU8256.
func BenchmarkMinFilterFloat256(b *testing.B) {
	benchmarkFilter256(b, func(img *imgcore.Image, size int) (*imgcore.Image, error) {
		return minMaxFilter(context.Background(), img, size, false, parallel.Workers(1))
	}, 5)
}

// BenchmarkMedianU8256 is the 256-bin histogram median at window 5; its
// float64 counterpart is BenchmarkMedianFilter256Serial.
func BenchmarkMedianU8256(b *testing.B) {
	benchmarkU8Filter256(b, func(u *imgcore.U8Image) error {
		_, err := medianFilterU8(context.Background(), u, 5, parallel.Workers(1))
		return err
	})
}

// BenchmarkBoxFixed256 is the int32 running-sum box at window 5; its
// float64 counterpart is BenchmarkBoxFilter256Serial.
func BenchmarkBoxFixed256(b *testing.B) {
	benchmarkU8Filter256(b, func(u *imgcore.U8Image) error {
		_, err := boxFilterU8(context.Background(), u, 5, parallel.Workers(1))
		return err
	})
}
