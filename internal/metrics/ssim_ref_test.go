package metrics

import (
	"math"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/testutil"
)

// ssimDirect is the naive SSIM reference: per-pixel local moments computed
// with an explicit 2-D Gaussian window (outer product of the 1-D kernel)
// and replicate-clamped taps. The production path computes the same
// moments with a separable blur, which reorders the summation — so the two
// agree to tolerance, not bit-exactly; TestSSIMMatchesDirectReference pins
// that tolerance.
func ssimDirect(a, b *imgcore.Image, opts SSIMOptions) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	if err := opts.validate(); err != nil {
		return 0, err
	}
	ga, gb := a.Gray(), b.Gray()
	w, h := ga.W, ga.H
	kern := gaussianKernel(opts.WindowRadius, opts.Sigma)
	r := opts.WindowRadius
	clampX := func(x int) int {
		if x < 0 {
			return 0
		}
		if x >= w {
			return w - 1
		}
		return x
	}
	clampY := func(y int) int {
		if y < 0 {
			return 0
		}
		if y >= h {
			return h - 1
		}
		return y
	}
	c1 := (opts.K1 * opts.L) * (opts.K1 * opts.L)
	c2 := (opts.K2 * opts.L) * (opts.K2 * opts.L)
	var sum float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var ma, mb, saa, sbb, sab float64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					wgt := kern[dy+r] * kern[dx+r]
					pa := ga.Pix[clampY(y+dy)*w+clampX(x+dx)]
					pb := gb.Pix[clampY(y+dy)*w+clampX(x+dx)]
					ma += wgt * pa
					mb += wgt * pb
					saa += wgt * pa * pa
					sbb += wgt * pb * pb
					sab += wgt * pa * pb
				}
			}
			varA := saa - ma*ma
			varB := sbb - mb*mb
			cov := sab - ma*mb
			num := (2*ma*mb + c1) * (2*cov + c2)
			den := (ma*ma + mb*mb + c1) * (varA + varB + c2)
			sum += num / den
		}
	}
	return sum / float64(w*h), nil
}

// TestSSIMMatchesDirectReference: the separable, pooled production SSIM
// must agree with the naive direct-window reference within the documented
// tolerance (the only difference is floating-point summation order).
func TestSSIMMatchesDirectReference(t *testing.T) {
	cases := []struct {
		w, h, c int
		opts    SSIMOptions
	}{
		{8, 8, 1, DefaultSSIM()},
		{17, 13, 1, DefaultSSIM()},
		{17, 13, 3, DefaultSSIM()},
		{9, 21, 3, SSIMOptions{WindowRadius: 2, Sigma: 0.8, K1: 0.01, K2: 0.03, L: 255}},
		{24, 11, 1, SSIMOptions{WindowRadius: 3, Sigma: 2.0, K1: 0.01, K2: 0.03, L: 255}},
	}
	for _, tc := range cases {
		a := randImage(101, tc.w, tc.h, tc.c)
		b := randImage(102, tc.w, tc.h, tc.c)
		want, err := ssimDirect(a, b, tc.opts)
		if err != nil {
			t.Fatalf("%dx%dx%d: reference: %v", tc.w, tc.h, tc.c, err)
		}
		got, err := SSIMWith(a, b, tc.opts)
		if err != nil {
			t.Fatalf("%dx%dx%d: %v", tc.w, tc.h, tc.c, err)
		}
		if !testutil.ApproxEqual(got, want, 1e-9, 1e-12) {
			t.Fatalf("%dx%dx%d r=%d: SSIM %v vs direct reference %v (diff %g)",
				tc.w, tc.h, tc.c, tc.opts.WindowRadius, got, want, math.Abs(got-want))
		}
	}
}

// TestSSIMPoolReuseDeterministic: repeated calls recycle pooled scratch;
// results must stay bit-identical and inputs untouched.
func TestSSIMPoolReuseDeterministic(t *testing.T) {
	a := randImage(103, 33, 27, 3)
	b := randImage(104, 33, 27, 3)
	aOrig := append([]float64(nil), a.Pix...)
	bOrig := append([]float64(nil), b.Pix...)
	first, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		// Interleave a different geometry so the pool hands back buffers of
		// mismatched history.
		if _, err := SSIM(randImage(105, 11, 7, 1), randImage(106, 11, 7, 1)); err != nil {
			t.Fatal(err)
		}
		again, err := SSIM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.BitEqual(again, first) {
			t.Fatalf("rep %d: SSIM drifted across pool reuse: %v vs %v", rep, again, first)
		}
	}
	if i := testutil.FirstDiff(a.Pix, aOrig); i >= 0 {
		t.Fatalf("SSIM mutated input a at sample %d", i)
	}
	if i := testutil.FirstDiff(b.Pix, bOrig); i >= 0 {
		t.Fatalf("SSIM mutated input b at sample %d", i)
	}
}

// TestSSIMSingleChannelBorrowsInput: for single-channel inputs the
// luminance path borrows img.Pix directly; the scalar must match the
// multi-pass result on an equivalent cloned image and leave the input
// unmodified.
func TestSSIMSingleChannelBorrowsInput(t *testing.T) {
	a := randImage(107, 19, 23, 1)
	b := randImage(108, 19, 23, 1)
	aOrig := append([]float64(nil), a.Pix...)
	got, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ssimDirect(a, b, DefaultSSIM())
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.ApproxEqual(got, want, 1e-9, 1e-12) {
		t.Fatalf("single-channel SSIM %v vs reference %v", got, want)
	}
	if i := testutil.FirstDiff(a.Pix, aOrig); i >= 0 {
		t.Fatalf("borrowed input mutated at sample %d", i)
	}
}

// TestKernelForCaching: the memoized window must be bit-identical to a
// fresh build, shared across calls, keyed by both radius and sigma, and
// bounded.
func TestKernelForCaching(t *testing.T) {
	k1 := kernelFor(5, 1.5)
	fresh := gaussianKernel(5, 1.5)
	if i := testutil.FirstDiff(k1, fresh); i >= 0 {
		t.Fatalf("cached kernel differs from fresh build at tap %d", i)
	}
	k2 := kernelFor(5, 1.5)
	if &k1[0] != &k2[0] {
		t.Fatal("repeat kernelFor returned a distinct slice (cache miss)")
	}
	k3 := kernelFor(5, 1.25)
	if &k3[0] == &k1[0] {
		t.Fatal("sigma must be part of the cache key")
	}
	k4 := kernelFor(4, 1.5)
	if len(k4) == len(k1) && &k4[0] == &k1[0] {
		t.Fatal("radius must be part of the cache key")
	}
	// Flood with distinct sigmas; the cache must stay bounded.
	for i := 0; i < 3*kernelCacheCap; i++ {
		kernelFor(2, 0.5+float64(i)*0.01)
	}
	if got := kernelCache.Len(); got > kernelCacheCap {
		t.Fatalf("kernel cache grew to %d entries, cap is %d", got, kernelCacheCap)
	}
}
