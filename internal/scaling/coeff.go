package scaling

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBadSize indicates a non-positive source or destination length.
var ErrBadSize = errors.New("scaling: sizes must be positive")

// Row is one row of a coefficient matrix: the output sample is the dot
// product of W with the source samples at Idx. Idx values are unique,
// sorted, in-range source indices.
type Row struct {
	Idx []int
	W   []float64
}

// Coeff is a sparse 1-D resampling operator mapping a source signal of
// length N onto a destination of length M: dst[i] = Σ_k Rows[i].W[k] *
// src[Rows[i].Idx[k]]. Rows are weight-normalized to sum to 1, so constant
// signals are preserved exactly.
//
// A Coeff is immutable after construction. Instances returned by CoeffFor
// are shared across callers — read Rows/Idx/W freely, never write them.
type Coeff struct {
	N, M int
	Rows []Row

	// fixedOnce/fixedC memoize the Q1.15 quantization built by fixed();
	// fixedC stays nil when the operator cannot be quantized safely.
	fixedOnce sync.Once
	fixedC    *fixedCoeff
}

// CoordMode selects the source-coordinate convention, mirroring the modes
// found across OpenCV, TensorFlow and ONNX. The convention decides WHICH
// source pixels a downscaler samples — and therefore where an attacker
// must embed target pixels — so cross-convention experiments need it
// explicit.
type CoordMode int

// Coordinate conventions.
const (
	// HalfPixel maps destination i to source (i+0.5)·scale − 0.5 — the
	// OpenCV default and TF2 behaviour. Default.
	HalfPixel CoordMode = iota + 1
	// AlignCorners maps i to i·(n−1)/(m−1), pinning the first and last
	// samples to the image corners (TF1's align_corners=True).
	AlignCorners
	// Asymmetric maps i to i·scale (ONNX "asymmetric", TF1 legacy).
	Asymmetric
)

// String implements fmt.Stringer.
func (c CoordMode) String() string {
	switch c {
	case HalfPixel:
		return "half-pixel"
	case AlignCorners:
		return "align-corners"
	case Asymmetric:
		return "asymmetric"
	default:
		return fmt.Sprintf("CoordMode(%d)", int(c))
	}
}

// Options configures a resampling operator.
type Options struct {
	// Algorithm is the interpolation method. Required.
	Algorithm Algorithm
	// Antialias widens the kernel by the scale factor when downscaling
	// (Pillow-style), which destroys the sparse pixel dependence the
	// image-scaling attack needs. Off by default, matching the
	// OpenCV/TensorFlow semantics attacked in the paper. Area scaling is
	// inherently antialiased regardless of this flag.
	Antialias bool
	// Coord selects the source-coordinate convention; zero value is
	// HalfPixel.
	Coord CoordMode
}

// srcCenter returns the source coordinate of destination sample i under
// the configured convention.
func (o Options) srcCenter(i, n, m int, scale float64) (float64, error) {
	switch o.Coord {
	case 0, HalfPixel:
		return (float64(i)+0.5)*scale - 0.5, nil
	case AlignCorners:
		if m == 1 {
			return float64(n-1) / 2, nil
		}
		return float64(i) * float64(n-1) / float64(m-1), nil
	case Asymmetric:
		return float64(i) * scale, nil
	default:
		return 0, fmt.Errorf("scaling: unknown coordinate mode %d", int(o.Coord))
	}
}

// BuildCoeff constructs the 1-D coefficient operator for resampling a
// signal of length n to length m using the given options. It always builds
// fresh; hot paths should prefer CoeffFor, which memoizes the result in
// the bounded package cache.
//
// Source coordinates follow the half-pixel-center convention used by
// OpenCV: the source position of destination sample i is
// (i + 0.5)·(n/m) − 0.5. Out-of-range taps are clamped to the border
// (replicate padding) by folding their weight into the edge samples.
func BuildCoeff(n, m int, opts Options) (*Coeff, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("%w: n=%d m=%d", ErrBadSize, n, m)
	}
	scale := float64(n) / float64(m)
	if opts.Algorithm == Nearest {
		return nearestCoeff(n, m, scale, opts)
	}
	k, err := kernelFor(opts.Algorithm)
	if err != nil {
		return nil, err
	}
	// Kernel scale: widened for antialiased downscale and always for Area.
	filterScale := 1.0
	if (opts.Antialias || opts.Algorithm == Area) && scale > 1 {
		filterScale = scale
	}
	support := k.support * filterScale
	c := &Coeff{N: n, M: m, Rows: make([]Row, m)}
	for i := 0; i < m; i++ {
		center, err := opts.srcCenter(i, n, m, scale)
		if err != nil {
			return nil, err
		}
		lo := int(fastFloor(center - support + 1e-9))
		hi := int(fastCeil(center + support - 1e-9))
		// Accumulate weights with border clamping: taps outside [0,n)
		// contribute to the nearest edge sample.
		acc := make(map[int]float64, hi-lo+1)
		var sum float64
		for j := lo; j <= hi; j++ {
			w := k.f((float64(j) - center) / filterScale)
			//declint:ignore floateq exact-zero taps are dropped; any nonzero weight is kept bit-exactly
			if w == 0 {
				continue
			}
			jj := j
			if jj < 0 {
				jj = 0
			} else if jj >= n {
				jj = n - 1
			}
			acc[jj] += w
			sum += w
		}
		//declint:ignore floateq only an exactly-zero weight sum is unnormalizable
		if sum == 0 || len(acc) == 0 {
			// Degenerate kernel placement; fall back to nearest tap.
			jj := clampIndex(int(fastFloor(center+0.5)), n)
			acc = map[int]float64{jj: 1}
			sum = 1
		}
		row := Row{Idx: make([]int, 0, len(acc)), W: make([]float64, 0, len(acc))}
		for j := 0; j < n; j++ {
			if w, ok := acc[j]; ok {
				row.Idx = append(row.Idx, j)
				row.W = append(row.W, w/sum)
			}
		}
		c.Rows[i] = row
	}
	return c, nil
}

func nearestCoeff(n, m int, scale float64, opts Options) (*Coeff, error) {
	c := &Coeff{N: n, M: m, Rows: make([]Row, m)}
	for i := 0; i < m; i++ {
		center, err := opts.srcCenter(i, n, m, scale)
		if err != nil {
			return nil, err
		}
		j := clampIndex(int(fastFloor(center+0.5)), n)
		c.Rows[i] = Row{Idx: []int{j}, W: []float64{1}}
	}
	return c, nil
}

func clampIndex(j, n int) int {
	if j < 0 {
		return 0
	}
	if j >= n {
		return n - 1
	}
	return j
}

func fastFloor(x float64) float64 {
	f := float64(int(x))
	//declint:ignore floateq integer-valued floats compare exactly by IEEE-754 construction
	if x < 0 && f != x {
		f--
	}
	return f
}

func fastCeil(x float64) float64 {
	f := float64(int(x))
	//declint:ignore floateq integer-valued floats compare exactly by IEEE-754 construction
	if x > 0 && f != x {
		f++
	}
	return f
}

// Apply resamples one channel-strided signal: src has length N with the
// given stride between consecutive samples; dst receives M samples with
// its own stride.
//
//declint:hot
func (c *Coeff) Apply(src []float64, srcStride int, dst []float64, dstStride int) {
	for i, row := range c.Rows {
		var s float64
		for k, j := range row.Idx {
			s += row.W[k] * src[j*srcStride]
		}
		dst[i*dstStride] = s
	}
}

// MaxTaps returns the largest number of source taps any row uses — the
// effective kernel footprint.
func (c *Coeff) MaxTaps() int {
	mx := 0
	for _, r := range c.Rows {
		if len(r.Idx) > mx {
			mx = len(r.Idx)
		}
	}
	return mx
}

// SourceUse returns, for each source index, how much total absolute weight
// the operator assigns to it. Indices with zero use are the "slack" pixels
// an image-scaling attack can modify without affecting the output.
func (c *Coeff) SourceUse() []float64 {
	use := make([]float64, c.N)
	for _, r := range c.Rows {
		for k, j := range r.Idx {
			w := r.W[k]
			if w < 0 {
				w = -w
			}
			use[j] += w
		}
	}
	return use
}
