package report

import "testing"

// Test files may discard errors; errdrop is scoped to non-test code.
func TestDrop(t *testing.T) {
	_ = mayFail()
	if Drop() == "" {
		t.Fatal("empty")
	}
}
