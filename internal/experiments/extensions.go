package experiments

import (
	"context"
	"fmt"

	"decamouflage/internal/attack"
	"decamouflage/internal/dataset"
	"decamouflage/internal/defense"
	"decamouflage/internal/detect"
	"decamouflage/internal/eval"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/report"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// extensionN caps the per-cell corpus size of the sweep experiments, which
// build many corpora.
func (r *Runner) extensionN() int {
	n := r.cfg.N / 4
	if n < 10 {
		n = 10
	}
	if n > 100 {
		n = 100
	}
	return n
}

// runX1 evaluates detection robustness when the attacker targets a
// DIFFERENT kernel than the defender uses (the black-box kernel threat).
func (r *Runner) runX1(ctx context.Context) error {
	kernels := []scaling.Algorithm{scaling.Nearest, scaling.Bilinear, scaling.Bicubic}
	n := r.extensionN()
	tbl := report.NewTable(
		fmt.Sprintf("Cross-kernel ensemble accuracy (attack kernel vs defense kernel, N=%d per cell; "+
			"'fn' = fraction of attacks still functional under the defender's kernel)", n),
		"Attack \\ Defense", kernels[0].String(), kernels[1].String(), kernels[2].String())
	for _, atkAlg := range kernels {
		row := []string{atkAlg.String()}
		for _, defAlg := range kernels {
			if err := ctx.Err(); err != nil {
				return err
			}
			spec := eval.CorpusSpec{
				Corpus: dataset.CaltechLike,
				N:      n,
				SrcW:   r.cfg.SrcW, SrcH: r.cfg.SrcH, DstW: r.cfg.DstW, DstH: r.cfg.DstH,
				Seed:            r.cfg.Seed + int64(atkAlg)*31 + int64(defAlg)*17,
				Algorithm:       defAlg,
				AttackAlgorithm: atkAlg,
				Eps:             r.cfg.Eps,
			}
			corpus, err := eval.BuildCorpus(ctx, spec)
			if err != nil {
				return err
			}
			// How many cross-kernel attacks even function against the
			// defender's scaler? Off-diagonal attacks usually target the
			// wrong pixels and die on their own.
			functional := 0
			for i, a := range corpus.Attacks {
				rep, err := attack.Success(a, corpus.Targets[i], corpus.Scaler)
				if err != nil {
					return err
				}
				if rep.Effective {
					functional++
				}
			}
			// Calibrate black-box (benign-only) on a matching train slice:
			// the defender never sees the attack kernel.
			trainSpec := spec
			trainSpec.Corpus = dataset.NeurIPSLike
			trainSpec.Seed += 555
			train, err := eval.BuildCorpus(ctx, trainSpec)
			if err != nil {
				return err
			}
			e, err := r.blackBoxEnsembleFor(ctx, train)
			if err != nil {
				return err
			}
			cs, err := eval.EvaluateEnsemble(ctx, e, corpus)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%s fn=%d/%d", report.Pct(cs.Accuracy()), functional, n))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(r.cfg.Out)
}

// blackBoxEnsembleFor calibrates a percentile-threshold ensemble from the
// benign half of the given corpus.
func (r *Runner) blackBoxEnsembleFor(ctx context.Context, train *eval.Corpus) (*detect.Ensemble, error) {
	ss, err := detect.NewScalingScorer(train.Scaler, detect.MSE)
	if err != nil {
		return nil, err
	}
	fs, err := detect.NewFilteringScorer(2, detect.SSIM)
	if err != nil {
		return nil, err
	}
	sb, _, err := eval.ScorePair(ctx, ss, train)
	if err != nil {
		return nil, err
	}
	fb, _, err := eval.ScorePair(ctx, fs, train)
	if err != nil {
		return nil, err
	}
	sth, err := detect.CalibrateBlackBox(sb, 1, detect.MSE.AttackDirection())
	if err != nil {
		return nil, err
	}
	fth, err := detect.CalibrateBlackBox(fb, 1, detect.SSIM.AttackDirection())
	if err != nil {
		return nil, err
	}
	return detect.NewDefaultEnsemble(detect.DefaultConfig{
		Scaler:             train.Scaler,
		ScalingThreshold:   sth,
		FilteringThreshold: fth,
	})
}

// runX2 sweeps the attacker's ε budget: larger ε makes the attack easier
// to solve but leaves the same comb signature; smaller ε forces exact
// embedding. Detection should hold across the sweep.
func (r *Runner) runX2(ctx context.Context) error {
	n := r.extensionN()
	tbl := report.NewTable(
		fmt.Sprintf("Attack ε sweep (N=%d per cell)", n),
		"ε", "Attack L∞ ok", "Perturb. MSE", "Ensemble Acc.", "FAR", "FRR")
	train, err := r.Train(ctx)
	if err != nil {
		return err
	}
	e, err := r.blackBoxEnsembleFor(ctx, train)
	if err != nil {
		return err
	}
	for _, eps := range []float64{1, 2, 4, 8} {
		if err := ctx.Err(); err != nil {
			return err
		}
		spec := eval.CorpusSpec{
			Corpus: dataset.CaltechLike,
			N:      n,
			SrcW:   r.cfg.SrcW, SrcH: r.cfg.SrcH, DstW: r.cfg.DstW, DstH: r.cfg.DstH,
			Seed:      r.cfg.Seed + 900 + int64(eps*10),
			Algorithm: r.cfg.Algorithm,
			Eps:       eps,
		}
		corpus, err := eval.BuildCorpus(ctx, spec)
		if err != nil {
			return err
		}
		// Attack quality: worst L∞ across the corpus.
		okCount := 0
		var perturb float64
		for i, a := range corpus.Attacks {
			down, err := corpus.Scaler.Resize(a)
			if err != nil {
				return err
			}
			var linf float64
			for j := range down.Pix {
				if d := abs(down.Pix[j] - corpus.Targets[i].Pix[j]); d > linf {
					linf = d
				}
			}
			if linf <= eps+0.6 {
				okCount++
			}
			m, err := metrics.MSE(a, corpus.Benign[i])
			if err != nil {
				return err
			}
			perturb += m
		}
		perturb /= float64(len(corpus.Attacks))
		cs, err := eval.EvaluateEnsemble(ctx, e, corpus)
		if err != nil {
			return err
		}
		tbl.AddRow(report.F(eps, 1),
			fmt.Sprintf("%d/%d", okCount, len(corpus.Attacks)),
			report.F(perturb, 1),
			report.Pct(cs.Accuracy()), report.Pct(cs.FAR()), report.Pct(cs.FRR()))
	}
	return tbl.Render(r.cfg.Out)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runX3 sweeps the CSP parameters the paper leaves unspecified, reporting
// the benign-single-point rate and attack-multi-point rate for each cell.
func (r *Runner) runX3(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	n := len(evalCorpus.Benign)
	if n > r.extensionN() {
		n = r.extensionN()
	}
	tbl := report.NewTable(
		fmt.Sprintf("CSP parameter sensitivity (N=%d)", n),
		"Binarize", "MinArea", "benign CSP<=1", "attack CSP>=2")
	for _, th := range []float64{0.70, 0.74, 0.78, 0.82} {
		for _, area := range []int{5, 10, 20} {
			if err := ctx.Err(); err != nil {
				return err
			}
			opts := steg.Options{BinarizeThreshold: th, MinArea: area}
			benignOK, attackOK := 0, 0
			for i := 0; i < n; i++ {
				cb, err := steg.CSP(evalCorpus.Benign[i], opts)
				if err != nil {
					return err
				}
				if cb <= 1 {
					benignOK++
				}
				ca, err := steg.CSP(evalCorpus.Attacks[i], opts)
				if err != nil {
					return err
				}
				if ca >= 2 {
					attackOK++
				}
			}
			tbl.AddRow(report.F(th, 2), fmt.Sprintf("%d", area),
				fmt.Sprintf("%d/%d", benignOK, n), fmt.Sprintf("%d/%d", attackOK, n))
		}
	}
	return tbl.Render(r.cfg.Out)
}

// runX4 compares Decamouflage (detection) with Quiring et al.'s prevention
// baselines on the same attacks: does the defense neutralize the attack,
// and at what benign-quality cost?
func (r *Runner) runX4(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	n := len(evalCorpus.Benign)
	if n > r.extensionN() {
		n = r.extensionN()
	}
	robust, err := defense.RobustScaler(evalCorpus.Scaler)
	if err != nil {
		return err
	}
	neutralizedRobust, neutralizedRecon := 0, 0
	var benignCostRecon float64
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		atk := evalCorpus.Attacks[i]
		tgt := evalCorpus.Targets[i]
		src := evalCorpus.Benign[i]

		// Robust scaling: does the area-scaled attack still hit the target?
		rep, err := attack.Success(atk, tgt, robust)
		if err != nil {
			return err
		}
		if !rep.Effective {
			neutralizedRobust++
		}
		// Reconstruction defense.
		cleaned, err := defense.MedianReconstruct(atk, evalCorpus.Scaler, 0)
		if err != nil {
			return err
		}
		rep, err = attack.Success(cleaned, tgt, evalCorpus.Scaler)
		if err != nil {
			return err
		}
		if !rep.Effective {
			neutralizedRecon++
		}
		// Benign-quality cost of reconstruction.
		cleanedBenign, err := defense.MedianReconstruct(src, evalCorpus.Scaler, 0)
		if err != nil {
			return err
		}
		m, err := metrics.MSE(cleanedBenign, src)
		if err != nil {
			return err
		}
		benignCostRecon += m
	}
	benignCostRecon /= float64(n)

	// Decamouflage detection on the same subset.
	train, err := r.Train(ctx)
	if err != nil {
		return err
	}
	e, err := r.blackBoxEnsembleFor(ctx, train)
	if err != nil {
		return err
	}
	sub := &eval.Corpus{
		Benign:  evalCorpus.Benign[:n],
		Attacks: evalCorpus.Attacks[:n],
		Targets: evalCorpus.Targets[:n],
		Scaler:  evalCorpus.Scaler,
	}
	cs, err := eval.EvaluateEnsemble(ctx, e, sub)
	if err != nil {
		return err
	}

	tbl := report.NewTable(
		fmt.Sprintf("Detection vs prevention (N=%d; paper Sections I and VI)", n),
		"Defense", "Attacks neutralized/detected", "Benign cost (MSE)")
	tbl.AddRow("Robust scaling (area)", fmt.Sprintf("%d/%d", neutralizedRobust, n), "0.0 (none)")
	tbl.AddRow("Median reconstruction", fmt.Sprintf("%d/%d", neutralizedRecon, n), report.F(benignCostRecon, 1))
	tbl.AddRow("Decamouflage (detect, black-box)",
		fmt.Sprintf("%d/%d", cs.TP, n),
		"0.0 (input unmodified)")
	return tbl.Render(r.cfg.Out)
}

// runX5 demonstrates the backdoor-poisoning audit scenario of Section II-B:
// a data aggregator scans a mixed submission batch offline and flags the
// poisoned (attack) images before training.
func (r *Runner) runX5(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	n := len(evalCorpus.Benign)
	if n > r.extensionN() {
		n = r.extensionN()
	}
	// A poisoned submission batch: 80% benign, 20% attacks.
	var batch []*imgcore.Image
	var labels []bool
	for i := 0; i < n; i++ {
		batch = append(batch, evalCorpus.Benign[i])
		labels = append(labels, false)
		if i%5 == 0 {
			batch = append(batch, evalCorpus.Attacks[i])
			labels = append(labels, true)
		}
	}
	train, err := r.Train(ctx)
	if err != nil {
		return err
	}
	e, err := r.blackBoxEnsembleFor(ctx, train)
	if err != nil {
		return err
	}
	var cs eval.ConfusionStats
	for i, img := range batch {
		v, err := e.Detect(ctx, img)
		if err != nil {
			return err
		}
		cs.Record(labels[i], v.Attack)
	}
	tbl := report.NewTable("Backdoor poisoning audit (paper Section II-B scenario)",
		"Batch size", "Poisoned", "Caught", "Missed", "False alarms")
	tbl.AddRow(fmt.Sprintf("%d", len(batch)), fmt.Sprintf("%d", cs.TP+cs.FN),
		fmt.Sprintf("%d", cs.TP), fmt.Sprintf("%d", cs.FN), fmt.Sprintf("%d", cs.FP))
	return tbl.Render(r.cfg.Out)
}
