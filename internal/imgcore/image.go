// Package imgcore provides the floating-point image representation shared by
// every Decamouflage subsystem, together with conversions to and from the
// standard library image types and PNG/JPEG codecs.
//
// Pixels are stored as float64 in the range [0, 255] in planar-interleaved
// row-major order (y, x, channel). Floating point is used throughout the
// pipeline so that the attack optimizer and the detection metrics are not
// perturbed by intermediate quantization; quantization to 8-bit happens only
// at encode time via Clamp8.
package imgcore

import (
	"errors"
	"fmt"
	"math"
)

// MaxPixel is the maximum representable pixel intensity for 8-bit images.
const MaxPixel = 255.0

// Common errors returned by image constructors and accessors.
var (
	// ErrEmptyImage indicates a zero-sized image where a non-empty one is
	// required.
	ErrEmptyImage = errors.New("imgcore: empty image")
	// ErrShapeMismatch indicates two images whose dimensions were expected
	// to agree but do not.
	ErrShapeMismatch = errors.New("imgcore: shape mismatch")
	// ErrBadChannels indicates an unsupported channel count.
	ErrBadChannels = errors.New("imgcore: channel count must be 1 or 3")
	// ErrBadDimensions indicates non-positive width or height.
	ErrBadDimensions = errors.New("imgcore: width and height must be positive")
)

// Image is a dense floating-point image with H rows, W columns and C
// channels (1 for grayscale, 3 for RGB). Pix holds H*W*C samples in
// row-major order with interleaved channels: Pix[(y*W+x)*C + c].
//
// The zero value is an empty image; use New to construct a valid one.
type Image struct {
	W, H, C int
	Pix     []float64
}

// New returns a zero-filled image of the given geometry.
// It returns an error if the geometry is invalid.
func New(w, h, c int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	if c != 1 && c != 3 {
		return nil, fmt.Errorf("%w: got %d", ErrBadChannels, c)
	}
	return &Image{W: w, H: h, C: c, Pix: make([]float64, w*h*c)}, nil
}

// MustNew is New for static geometries known to be valid; it panics on error
// and is intended for tests and package-internal constants only.
func MustNew(w, h, c int) *Image {
	img, err := New(w, h, c)
	if err != nil {
		panic(err)
	}
	return img
}

// Validate checks internal consistency of the image header against its
// backing slice.
func (m *Image) Validate() error {
	if m == nil || m.W == 0 || m.H == 0 {
		return ErrEmptyImage
	}
	if m.W < 0 || m.H < 0 {
		return fmt.Errorf("%w: %dx%d", ErrBadDimensions, m.W, m.H)
	}
	if m.C != 1 && m.C != 3 {
		return fmt.Errorf("%w: got %d", ErrBadChannels, m.C)
	}
	if len(m.Pix) != m.W*m.H*m.C {
		return fmt.Errorf("imgcore: pixel buffer length %d does not match %dx%dx%d",
			len(m.Pix), m.W, m.H, m.C)
	}
	return nil
}

// SameShape reports whether m and o have identical geometry.
func (m *Image) SameShape(o *Image) bool {
	return m != nil && o != nil && m.W == o.W && m.H == o.H && m.C == o.C
}

// At returns the sample at (x, y, c). Out-of-range coordinates are the
// caller's responsibility; At performs no bounds checking beyond the slice's.
func (m *Image) At(x, y, c int) float64 {
	return m.Pix[(y*m.W+x)*m.C+c]
}

// Set writes the sample at (x, y, c).
func (m *Image) Set(x, y, c int, v float64) {
	m.Pix[(y*m.W+x)*m.C+c] = v
}

// AtClamped returns the sample at (x, y, c) with coordinates clamped to the
// image border (replicate padding), the convention used by the scaling
// kernels and spatial filters.
func (m *Image) AtClamped(x, y, c int) float64 {
	if x < 0 {
		x = 0
	} else if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= m.H {
		y = m.H - 1
	}
	return m.Pix[(y*m.W+x)*m.C+c]
}

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, C: m.C, Pix: make([]float64, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// Clamp8 clamps every sample into [0, 255] in place and returns the image.
func (m *Image) Clamp8() *Image {
	for i, v := range m.Pix {
		if v < 0 {
			m.Pix[i] = 0
		} else if v > MaxPixel {
			m.Pix[i] = MaxPixel
		}
	}
	return m
}

// Quantize8 rounds every sample to the nearest integer and clamps to
// [0, 255] in place, simulating an 8-bit round trip, and returns the image.
func (m *Image) Quantize8() *Image {
	for i, v := range m.Pix {
		v = math.Round(v)
		if v < 0 {
			v = 0
		} else if v > MaxPixel {
			v = MaxPixel
		}
		m.Pix[i] = v
	}
	return m
}

// Gray returns a single-channel luminance copy of the image using the
// ITU-R BT.601 weights (the convention OpenCV uses for RGB→gray). A
// grayscale input is cloned.
func (m *Image) Gray() *Image {
	if m.C == 1 {
		return m.Clone()
	}
	out := &Image{W: m.W, H: m.H, C: 1, Pix: make([]float64, m.W*m.H)}
	for i := 0; i < m.W*m.H; i++ {
		r := m.Pix[i*3]
		g := m.Pix[i*3+1]
		b := m.Pix[i*3+2]
		out.Pix[i] = 0.299*r + 0.587*g + 0.114*b
	}
	return out
}

// Channel extracts channel c as a new single-channel image.
func (m *Image) Channel(c int) (*Image, error) {
	if c < 0 || c >= m.C {
		return nil, fmt.Errorf("imgcore: channel %d out of range [0,%d)", c, m.C)
	}
	out := &Image{W: m.W, H: m.H, C: 1, Pix: make([]float64, m.W*m.H)}
	for i := 0; i < m.W*m.H; i++ {
		out.Pix[i] = m.Pix[i*m.C+c]
	}
	return out, nil
}

// SetChannel overwrites channel c of m with the single-channel image src.
func (m *Image) SetChannel(c int, src *Image) error {
	if c < 0 || c >= m.C {
		return fmt.Errorf("imgcore: channel %d out of range [0,%d)", c, m.C)
	}
	if src.C != 1 || src.W != m.W || src.H != m.H {
		return fmt.Errorf("%w: want %dx%dx1, got %dx%dx%d",
			ErrShapeMismatch, m.W, m.H, src.W, src.H, src.C)
	}
	for i := 0; i < m.W*m.H; i++ {
		m.Pix[i*m.C+c] = src.Pix[i]
	}
	return nil
}

// Sub returns m - o as a new image. The shapes must match.
func (m *Image) Sub(o *Image) (*Image, error) {
	if !m.SameShape(o) {
		return nil, fmt.Errorf("%w: %dx%dx%d vs %dx%dx%d",
			ErrShapeMismatch, m.W, m.H, m.C, o.W, o.H, o.C)
	}
	out := m.Clone()
	for i := range out.Pix {
		out.Pix[i] -= o.Pix[i]
	}
	return out, nil
}

// Add returns m + o as a new image. The shapes must match.
func (m *Image) Add(o *Image) (*Image, error) {
	if !m.SameShape(o) {
		return nil, fmt.Errorf("%w: %dx%dx%d vs %dx%dx%d",
			ErrShapeMismatch, m.W, m.H, m.C, o.W, o.H, o.C)
	}
	out := m.Clone()
	for i := range out.Pix {
		out.Pix[i] += o.Pix[i]
	}
	return out, nil
}

// Scale multiplies every sample by k in place and returns the image.
func (m *Image) Scale(k float64) *Image {
	for i := range m.Pix {
		m.Pix[i] *= k
	}
	return m
}

// Fill sets every sample to v and returns the image.
func (m *Image) Fill(v float64) *Image {
	for i := range m.Pix {
		m.Pix[i] = v
	}
	return m
}

// Mean returns the mean sample value across all channels.
func (m *Image) Mean() float64 {
	if len(m.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range m.Pix {
		s += v
	}
	return s / float64(len(m.Pix))
}

// MinMax returns the smallest and largest sample values. It returns (0, 0)
// for an empty image.
func (m *Image) MinMax() (lo, hi float64) {
	if len(m.Pix) == 0 {
		return 0, 0
	}
	lo, hi = m.Pix[0], m.Pix[0]
	for _, v := range m.Pix[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// AbsMax returns the largest absolute sample value, or 0 for an empty image.
func (m *Image) AbsMax() float64 {
	var mx float64
	for _, v := range m.Pix {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// HasNaN reports whether any sample is NaN or infinite.
func (m *Image) HasNaN() bool {
	for _, v := range m.Pix {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer with a compact geometry description.
func (m *Image) String() string {
	if m == nil {
		return "Image(nil)"
	}
	return fmt.Sprintf("Image(%dx%dx%d)", m.W, m.H, m.C)
}
