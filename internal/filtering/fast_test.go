package filtering

import (
	"context"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

// fastNaivePairs returns the three rank filters in both implementations:
// the fast path under test and the naive reference it must match bit-forbit.
type filterPair struct {
	name  string
	fast  func(*imgcore.Image, int) (*imgcore.Image, error)
	naive func(*imgcore.Image, int) (*imgcore.Image, error)
}

func fastNaivePairs() []filterPair {
	return []filterPair{
		{"min",
			func(img *imgcore.Image, size int) (*imgcore.Image, error) {
				return minMaxFilter(context.Background(), img, size, false)
			},
			func(img *imgcore.Image, size int) (*imgcore.Image, error) {
				return rankFilter(context.Background(), img, size, pickMin)
			}},
		{"max",
			func(img *imgcore.Image, size int) (*imgcore.Image, error) {
				return minMaxFilter(context.Background(), img, size, true)
			},
			func(img *imgcore.Image, size int) (*imgcore.Image, error) {
				return rankFilter(context.Background(), img, size, pickMax)
			}},
		{"median",
			func(img *imgcore.Image, size int) (*imgcore.Image, error) {
				return medianFilter(context.Background(), img, size)
			},
			func(img *imgcore.Image, size int) (*imgcore.Image, error) {
				return rankFilter(context.Background(), img, size, pickMedian)
			}},
	}
}

// TestFastFiltersBitEqualNaive is the core exactness pin of the fast
// kernels: min, max and median must be BIT-IDENTICAL to the naive window
// scan across odd and even windows, both channel counts, and a geometry
// corpus that includes non-square and prime sizes.
func TestFastFiltersBitEqualNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sizes := [][2]int{{2, 3}, {7, 5}, {16, 16}, {31, 29}, {64, 48}, {97, 11}}
	for _, wh := range sizes {
		for _, c := range []int{1, 3} {
			img := noiseImage(rng, wh[0], wh[1], c)
			for _, window := range []int{2, 3, 4, 5, 7} {
				for _, p := range fastNaivePairs() {
					want, err := p.naive(img, window)
					if err != nil {
						t.Fatalf("%s naive %dx%dx%d w=%d: %v", p.name, wh[0], wh[1], c, window, err)
					}
					got, err := p.fast(img, window)
					if err != nil {
						t.Fatalf("%s fast %dx%dx%d w=%d: %v", p.name, wh[0], wh[1], c, window, err)
					}
					if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
						t.Fatalf("%s %dx%dx%d w=%d: sample %d differs: fast %v vs naive %v",
							p.name, wh[0], wh[1], c, window, i, got.Pix[i], want.Pix[i])
					}
				}
			}
		}
	}
}

// TestFastFiltersDegenerateGeometry pins the clamp-border corner cases for
// both implementations: windows at least as large as the image, single-row
// and single-column images, and even-size anchoring where the whole window
// hangs off the right/bottom clamp border. Satisfying these means the
// padded sweep reproduces AtClamped semantics exactly everywhere.
func TestFastFiltersDegenerateGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	cases := []struct {
		w, h, c, window int
	}{
		{4, 4, 1, 4},  // window == image
		{4, 3, 3, 5},  // window > both dimensions, odd
		{3, 5, 1, 8},  // window much larger, even
		{1, 1, 1, 3},  // single pixel
		{1, 9, 3, 2},  // single column, even window anchors right of it
		{1, 9, 1, 5},  // single column, odd window
		{11, 1, 3, 4}, // single row, even window anchors below it
		{11, 1, 1, 7}, // single row, odd window
		{6, 6, 1, 6},  // even window == image: anchor at (5,5) covers taps 5..10, all clamped
		{5, 2, 3, 2},  // minimal even window on a shallow image
		{2, 7, 1, 3},  // odd window wider than the image
	}
	for _, tc := range cases {
		img := noiseImage(rng, tc.w, tc.h, tc.c)
		for _, p := range fastNaivePairs() {
			want, err := p.naive(img, tc.window)
			if err != nil {
				t.Fatalf("%s naive %dx%dx%d w=%d: %v", p.name, tc.w, tc.h, tc.c, tc.window, err)
			}
			got, err := p.fast(img, tc.window)
			if err != nil {
				t.Fatalf("%s fast %dx%dx%d w=%d: %v", p.name, tc.w, tc.h, tc.c, tc.window, err)
			}
			if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
				t.Fatalf("%s %dx%dx%d w=%d: sample %d differs: fast %v vs naive %v",
					p.name, tc.w, tc.h, tc.c, tc.window, i, got.Pix[i], want.Pix[i])
			}
		}
		// Box is tolerance-tested over the same degenerate corpus.
		want, err := boxNaive(context.Background(), img, tc.window)
		if err != nil {
			t.Fatalf("box naive %dx%dx%d w=%d: %v", tc.w, tc.h, tc.c, tc.window, err)
		}
		got, err := boxFilter(context.Background(), img, tc.window)
		if err != nil {
			t.Fatalf("box fast %dx%dx%d w=%d: %v", tc.w, tc.h, tc.c, tc.window, err)
		}
		for i := range want.Pix {
			if !testutil.ApproxEqual(got.Pix[i], want.Pix[i], 1e-12, 1e-9) {
				t.Fatalf("box %dx%dx%d w=%d: sample %d: fast %v vs naive %v",
					tc.w, tc.h, tc.c, tc.window, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

// TestBoxFastWithinToleranceOfNaive bounds the running-sum reordering error
// against the per-window reference on regular geometries. The documented
// contract is agreement within 1e-12 relative / 1e-9 absolute for pixel
// data in [0, 255].
func TestBoxFastWithinToleranceOfNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, wh := range [][2]int{{5, 3}, {17, 23}, {32, 32}, {41, 19}, {128, 64}} {
		for _, c := range []int{1, 3} {
			img := noiseImage(rng, wh[0], wh[1], c)
			for _, window := range []int{2, 3, 5, 8} {
				want, err := boxNaive(context.Background(), img, window)
				if err != nil {
					t.Fatal(err)
				}
				got, err := boxFilter(context.Background(), img, window)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Pix {
					if !testutil.ApproxEqual(got.Pix[i], want.Pix[i], 1e-12, 1e-9) {
						t.Fatalf("box %dx%dx%d w=%d sample %d: fast %v vs naive %v (Δ=%v)",
							wh[0], wh[1], c, window, i, got.Pix[i], want.Pix[i],
							got.Pix[i]-want.Pix[i])
					}
				}
			}
		}
	}
}

// TestFastFiltersSerialParallelEquivalence: the fast kernels' band
// decomposition (rows for the horizontal sweep and the median, columns for
// the vertical sweep) must be bit-identical across worker counts.
func TestFastFiltersSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for _, wh := range [][2]int{{7, 5}, {31, 29}, {64, 48}} {
		for _, c := range []int{1, 3} {
			img := noiseImage(rng, wh[0], wh[1], c)
			for _, window := range []int{2, 5} {
				type run struct {
					name string
					fn   func(...parallel.Option) (*imgcore.Image, error)
				}
				runs := []run{
					{"min", func(po ...parallel.Option) (*imgcore.Image, error) {
						return minMaxFilter(context.Background(), img, window, false, po...)
					}},
					{"max", func(po ...parallel.Option) (*imgcore.Image, error) {
						return minMaxFilter(context.Background(), img, window, true, po...)
					}},
					{"median", func(po ...parallel.Option) (*imgcore.Image, error) {
						return medianFilter(context.Background(), img, window, po...)
					}},
					{"box", func(po ...parallel.Option) (*imgcore.Image, error) {
						return boxFilter(context.Background(), img, window, po...)
					}},
				}
				for _, r := range runs {
					want, err := r.fn(parallel.Workers(1), parallel.Grain(1))
					if err != nil {
						t.Fatalf("%s serial: %v", r.name, err)
					}
					for _, workers := range []int{2, 4, 7} {
						got, err := r.fn(parallel.Workers(workers), parallel.Grain(1))
						if err != nil {
							t.Fatalf("%s workers=%d: %v", r.name, workers, err)
						}
						if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
							t.Fatalf("%s %dx%dx%d w=%d workers=%d: sample %d differs",
								r.name, wh[0], wh[1], c, window, workers, i)
						}
					}
				}
			}
		}
	}
}

// TestFastFiltersValidation pins the error paths of the fast entry points.
func TestFastFiltersValidation(t *testing.T) {
	img := noiseImage(rand.New(rand.NewSource(65)), 4, 4, 1)
	for _, size := range []int{0, 1, -3} {
		if _, err := Minimum(img, size); err == nil {
			t.Errorf("Minimum(size=%d) = nil error", size)
		}
		if _, err := Maximum(img, size); err == nil {
			t.Errorf("Maximum(size=%d) = nil error", size)
		}
		if _, err := Median(img, size); err == nil {
			t.Errorf("Median(size=%d) = nil error", size)
		}
		if _, err := Box(img, size); err == nil {
			t.Errorf("Box(size=%d) = nil error", size)
		}
	}
	for name, fn := range map[string]func(*imgcore.Image, int) (*imgcore.Image, error){
		"Minimum": Minimum, "Maximum": Maximum, "Median": Median, "Box": Box,
	} {
		if _, err := fn(&imgcore.Image{}, 2); err == nil {
			t.Errorf("%s(empty) = nil error", name)
		}
	}
}

// TestFastFiltersDoNotMutateInput covers the new sweeps' aliasing.
func TestFastFiltersDoNotMutateInput(t *testing.T) {
	img := noiseImage(rand.New(rand.NewSource(66)), 9, 7, 3)
	snapshot := append([]float64(nil), img.Pix...)
	for name, fn := range map[string]func(*imgcore.Image, int) (*imgcore.Image, error){
		"Minimum": Minimum, "Maximum": Maximum, "Median": Median, "Box": Box,
	} {
		if _, err := fn(img, 3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if i := testutil.FirstDiff(img.Pix, snapshot); i != -1 {
			t.Fatalf("%s mutated its input at sample %d", name, i)
		}
	}
}

// benchmarkFilter256 runs one filter at 256×256×3 with the paper-relevant
// window sizes; window 5 is the headline comparison (the naive path does
// 25 samples per pixel there, the fast paths O(1)).
func benchmarkFilter256(b *testing.B, fn func(*imgcore.Image, int) (*imgcore.Image, error), window int) {
	rng := rand.New(rand.NewSource(5))
	img := noiseImage(rng, 256, 256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(img, window); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankFilter256Naive is the O(size²)-per-pixel reference sweep
// (window 5 minimum) the fast path's speedup is measured against.
func BenchmarkRankFilter256Naive(b *testing.B) {
	benchmarkFilter256(b, func(img *imgcore.Image, size int) (*imgcore.Image, error) {
		return rankFilter(context.Background(), img, size, pickMin, parallel.Workers(1))
	}, 5)
}

// BenchmarkMedianFilter256Naive is the collect-and-sort median reference at
// window 5.
func BenchmarkMedianFilter256Naive(b *testing.B) {
	benchmarkFilter256(b, func(img *imgcore.Image, size int) (*imgcore.Image, error) {
		return rankFilter(context.Background(), img, size, pickMedian, parallel.Workers(1))
	}, 5)
}

// BenchmarkMedianFilter256Serial is the sliding sorted-window median at
// window 5, single worker.
func BenchmarkMedianFilter256Serial(b *testing.B) {
	benchmarkFilter256(b, func(img *imgcore.Image, size int) (*imgcore.Image, error) {
		return medianFilter(context.Background(), img, size, parallel.Workers(1))
	}, 5)
}

// BenchmarkBoxFilter256Naive is the per-window mean reference at window 5.
func BenchmarkBoxFilter256Naive(b *testing.B) {
	benchmarkFilter256(b, func(img *imgcore.Image, size int) (*imgcore.Image, error) {
		return boxNaive(context.Background(), img, size, parallel.Workers(1))
	}, 5)
}

// BenchmarkBoxFilter256Serial is the separable running-sum box at window 5,
// single worker.
func BenchmarkBoxFilter256Serial(b *testing.B) {
	benchmarkFilter256(b, func(img *imgcore.Image, size int) (*imgcore.Image, error) {
		return boxFilter(context.Background(), img, size, parallel.Workers(1))
	}, 5)
}
