// Transform plans. A Plan precomputes everything about a 1-D DFT of a
// fixed (length, direction) that does not depend on the input: the
// bit-reversal permutation and per-stage twiddle tables for radix-2
// lengths, plus the chirp sequence and the precomputed FFT of the chirp
// filter for Bluestein lengths. Executing a plan performs the exact same
// arithmetic as the naive transform in fft.go — the twiddle tables are
// built by the same repeated-multiplication recurrence the naive loop uses
// — so planned output is BIT-IDENTICAL to unplanned output (pinned by
// TestPlannedMatchesNaive*).
//
// Plans are cached per (length, direction) in a bounded, mutex-guarded LRU
// (planCacheCap entries); scratch buffers for Bluestein's convolution and
// the 2-D column gather come from sync.Pools. Between the two, the steady
// state of Transform2D/CenteredSpectrum performs no per-row allocation at
// all for radix-2 sizes and only pool churn for Bluestein sizes.
package fourier

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"decamouflage/internal/cache"
	"decamouflage/internal/obs"
)

// Plan is an immutable, reusable 1-D DFT descriptor for one (length,
// direction). It is safe for concurrent use: execution state lives on the
// caller's slice and in pooled scratch.
type Plan struct {
	n       int
	inverse bool

	// Radix-2 state (n a power of two, n >= 2).
	perm   []int          // bit-reversal target for each index
	stages [][]complex128 // twiddle table per butterfly stage, half-size each

	// Bluestein state (other lengths).
	m       int          // power-of-two convolution length >= 2n-1
	chirp   []complex128 // exp(sign·iπk²/n), k in [0, n)
	bfft    []complex128 // forward FFT of the chirp filter, length m
	sub     *Plan        // radix-2 plan of length m, forward
	subInv  *Plan        // radix-2 plan of length m, inverse
	scratch *sync.Pool   // *[]complex128 of length m, zeroed on return
}

// N returns the transform length the plan was built for.
func (p *Plan) N() int { return p.n }

// Inverse reports the transform direction.
func (p *Plan) Inverse() bool { return p.inverse }

// NewPlan builds a plan for an unnormalized DFT of length n in the given
// direction (inverse plans flip the twiddle sign and, like the naive
// transform, leave 1/n scaling to the caller).
func NewPlan(n int, inverse bool) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fourier: invalid plan length %d", n)
	}
	p := &Plan{n: n, inverse: inverse}
	if n == 1 {
		return p, nil
	}
	if n&(n-1) == 0 {
		p.initRadix2()
		return p, nil
	}
	if err := p.initBluestein(); err != nil {
		return nil, err
	}
	return p, nil
}

// initRadix2 precomputes the bit-reversal permutation and the per-stage
// twiddle tables, using the SAME repeated-multiplication recurrence as the
// naive radix2 loop so the table entries are bit-identical to the values
// that loop would compute.
func (p *Plan) initRadix2() {
	n := p.n
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	p.perm = make([]int, n)
	for i := 0; i < n; i++ {
		p.perm[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	sign := -1.0
	if p.inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, step)
		tw := make([]complex128, half)
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			tw[k] = w
			w *= wStep
		}
		p.stages = append(p.stages, tw)
	}
}

// initBluestein precomputes the chirp sequence and the forward FFT of the
// chirp filter, plus the two radix-2 sub-plans for the convolution length.
// Sub-plans come from the shared cache so different Bluestein lengths with
// the same padded size share tables.
func (p *Plan) initBluestein() error {
	n := p.n
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	sign := -1.0
	if p.inverse {
		sign = 1.0
	}
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k reduced mod 2n: the chirp phase is periodic with period 2n in
		// k², and the reduction avoids overflow for very large n. Matches
		// the naive bluestein exactly.
		kk := (int64(k) * int64(k)) % int64(2*n)
		p.chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	var err error
	p.sub, err = PlanFor(m, false)
	if err != nil {
		return err
	}
	p.subInv, err = PlanFor(m, true)
	if err != nil {
		return err
	}
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(p.chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(p.chirp[k])
	}
	p.sub.execRadix2(b)
	p.bfft = b
	p.scratch = &sync.Pool{New: func() any { return &[]complex128{} }}
	return nil
}

// Transform runs the planned unnormalized DFT in place on x, which must
// have length N(). The arithmetic — and therefore the output, bit for bit
// — is identical to the naive transform in fft.go.
//
//declint:hot
func (p *Plan) Transform(x []complex128) error {
	if len(x) != p.n {
		//declint:ignore hotalloc error path only; the length-mismatch message boxes its ints once per misuse, never per transform
		return fmt.Errorf("fourier: plan length %d, input length %d", p.n, len(x))
	}
	if p.n == 1 {
		return nil
	}
	if p.perm != nil {
		p.execRadix2(x)
		return nil
	}
	p.execBluestein(x)
	return nil
}

// execRadix2 is the iterative Cooley-Tukey butterfly with precomputed
// permutation and twiddles.
//
//declint:hot
func (p *Plan) execRadix2(x []complex128) {
	n := p.n
	for i, j := range p.perm {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	size := 2
	for _, tw := range p.stages {
		half := size >> 1
		for start := 0; start < n; start += size {
			blk := x[start : start+size]
			for k := 0; k < half; k++ {
				a := blk[k]
				b := blk[k+half] * tw[k]
				blk[k] = a + b
				blk[k+half] = a - b
			}
		}
		size <<= 1
	}
}

// execBluestein evaluates the chirp-z convolution with the precomputed
// filter spectrum and pooled scratch.
//
//declint:hot
func (p *Plan) execBluestein(x []complex128) {
	n, m := p.n, p.m
	ap := p.scratch.Get().(*[]complex128)
	a := *ap
	if cap(a) < m {
		//declint:ignore hotalloc pool-miss cold path; steady state reuses the pooled buffer
		a = make([]complex128, m)
	}
	a = a[:m]
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	// a[n:] is zero: fresh buffers start zeroed and returned buffers are
	// cleared below.
	p.sub.execRadix2(a)
	for i := range a {
		a[i] *= p.bfft[i]
	}
	p.subInv.execRadix2(a)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * p.chirp[k]
	}
	clear(a)
	*ap = a
	p.scratch.Put(ap)
}

// planCacheCap bounds the global plan cache. Each entry is O(n) complex
// values; 64 entries comfortably cover a detection service's working set
// (a handful of image geometries × two directions, plus Bluestein
// sub-plans) while bounding worst-case memory.
const planCacheCap = 64

type planKey struct {
	n       int
	inverse bool
}

// planCache memoizes plans per (length, direction), reporting hit/miss/
// eviction counts as the "fourier.plan" cache metrics.
var planCache = cache.NewLRU[planKey, *Plan](planCacheCap, obs.NewCacheStats("fourier.plan"))

// PlanFor returns the cached plan for (n, direction), building and caching
// it on first use. The cache holds at most planCacheCap entries and evicts
// the least recently used; eviction only drops the cache's reference, so
// plans already held by callers (or embedded as Bluestein sub-plans)
// remain valid. Concurrent callers may briefly build the same plan twice
// (the build runs outside the cache lock, which also lets Bluestein
// construction recursively call PlanFor for its convolution length); both
// copies compute identical tables, so whichever lands in the cache is
// indistinguishable.
func PlanFor(n int, inverse bool) (*Plan, error) {
	return planCache.GetOrBuild(planKey{n: n, inverse: inverse}, func() (*Plan, error) {
		return NewPlan(n, inverse)
	})
}

// planCacheLen reports the current cache population (for tests).
func planCacheLen() int { return planCache.Len() }

// resetPlanCache empties the cache (for tests).
func resetPlanCache() { planCache.Reset() }
