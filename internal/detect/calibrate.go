package detect

import (
	"encoding/json"
	"fmt"
	"sort"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/stats"
)

// Scores evaluates a scorer over a corpus, returning one score per image.
//
//declint:nan-ok NaN/Inf handling is each scorer's contract; Scores only fans out
func Scores(s Scorer, imgs []*imgcore.Image) ([]float64, error) {
	if s == nil {
		return nil, fmt.Errorf("detect: nil scorer")
	}
	out := make([]float64, len(imgs))
	for i, img := range imgs {
		v, err := s.Score(img)
		if err != nil {
			return nil, fmt.Errorf("detect: scoring image %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// WhiteBoxResult is the outcome of white-box threshold selection.
type WhiteBoxResult struct {
	Threshold Threshold
	// TrainAccuracy is the accuracy achieved on the calibration scores.
	TrainAccuracy float64
	// Curve is the explored (threshold candidate, accuracy) series — the
	// paper's Figure 8.
	Curve []CurvePoint
}

// CurvePoint is one candidate threshold and its training accuracy.
type CurvePoint struct {
	Threshold float64
	Accuracy  float64
}

// CalibrateWhiteBox selects the decision threshold that maximizes accuracy
// on labelled benign and attack score samples — the paper's "gradient
// descent method that searches for the optimal threshold". For a 1-D
// threshold classifier the optimum always lies at a midpoint between two
// adjacent sorted scores, so the exhaustive midpoint scan below finds the
// global optimum of the same objective the paper's iterative search climbs.
// The comparison direction is inferred from the score means.
func CalibrateWhiteBox(benign, attack []float64) (*WhiteBoxResult, error) {
	if len(benign) == 0 || len(attack) == 0 {
		return nil, fmt.Errorf("detect: white-box calibration needs both benign and attack scores")
	}
	dir := Above
	if stats.Mean(attack) < stats.Mean(benign) {
		dir = Below
	}

	// Candidate thresholds: midpoints of adjacent values in the merged
	// sorted score set, plus sentinels outside the range.
	all := make([]float64, 0, len(benign)+len(attack))
	all = append(all, benign...)
	all = append(all, attack...)
	sort.Float64s(all)
	candidates := make([]float64, 0, len(all)+1)
	candidates = append(candidates, all[0]-1)
	for i := 1; i < len(all); i++ {
		//declint:ignore floateq candidate thresholds split only strictly distinct sorted scores
		if all[i] != all[i-1] {
			candidates = append(candidates, (all[i]+all[i-1])/2)
		}
	}
	candidates = append(candidates, all[len(all)-1]+1)

	res := &WhiteBoxResult{Curve: make([]CurvePoint, 0, len(candidates))}
	best := -1.0
	for _, c := range candidates {
		th := Threshold{Value: c, Direction: dir}
		correct := 0
		for _, s := range benign {
			if !th.Classify(s) {
				correct++
			}
		}
		for _, s := range attack {
			if th.Classify(s) {
				correct++
			}
		}
		acc := float64(correct) / float64(len(benign)+len(attack))
		res.Curve = append(res.Curve, CurvePoint{Threshold: c, Accuracy: acc})
		if acc > best {
			best = acc
			res.Threshold = th
			res.TrainAccuracy = acc
		}
	}
	return res, nil
}

// CalibrateWhiteBoxIterative is the paper's described "gradient descent"
// search in its literal iterative form: starting from the midpoint of the
// class means, it repeatedly probes the neighboring candidate thresholds
// (midpoints between adjacent sorted scores) and moves to whichever
// neighbor improves training accuracy, stopping at a local optimum. For
// 1-D threshold classifiers on unimodal class distributions this finds the
// same boundary as the exhaustive scan (verified by tests); the exhaustive
// CalibrateWhiteBox remains the default because it is globally optimal for
// any score distribution at the same asymptotic cost.
func CalibrateWhiteBoxIterative(benign, attack []float64) (*WhiteBoxResult, error) {
	if len(benign) == 0 || len(attack) == 0 {
		return nil, fmt.Errorf("detect: white-box calibration needs both benign and attack scores")
	}
	dir := Above
	if stats.Mean(attack) < stats.Mean(benign) {
		dir = Below
	}
	all := make([]float64, 0, len(benign)+len(attack))
	all = append(all, benign...)
	all = append(all, attack...)
	sort.Float64s(all)
	candidates := []float64{all[0] - 1}
	for i := 1; i < len(all); i++ {
		//declint:ignore floateq candidate thresholds split only strictly distinct sorted scores
		if all[i] != all[i-1] {
			candidates = append(candidates, (all[i]+all[i-1])/2)
		}
	}
	candidates = append(candidates, all[len(all)-1]+1)

	accuracyAt := func(c float64) float64 {
		th := Threshold{Value: c, Direction: dir}
		correct := 0
		for _, s := range benign {
			if !th.Classify(s) {
				correct++
			}
		}
		for _, s := range attack {
			if th.Classify(s) {
				correct++
			}
		}
		return float64(correct) / float64(len(benign)+len(attack))
	}

	// Start at the candidate nearest the midpoint of the class means.
	start := (stats.Mean(benign) + stats.Mean(attack)) / 2
	pos := sort.SearchFloat64s(candidates, start)
	if pos >= len(candidates) {
		pos = len(candidates) - 1
	}
	res := &WhiteBoxResult{}
	cur := accuracyAt(candidates[pos])
	res.Curve = append(res.Curve, CurvePoint{Threshold: candidates[pos], Accuracy: cur})
	for {
		bestPos, bestAcc := pos, cur
		if pos > 0 {
			if a := accuracyAt(candidates[pos-1]); a > bestAcc {
				bestPos, bestAcc = pos-1, a
			}
		}
		if pos < len(candidates)-1 {
			if a := accuracyAt(candidates[pos+1]); a > bestAcc {
				bestPos, bestAcc = pos+1, a
			}
		}
		if bestPos == pos {
			break
		}
		pos, cur = bestPos, bestAcc
		res.Curve = append(res.Curve, CurvePoint{Threshold: candidates[pos], Accuracy: cur})
	}
	res.Threshold = Threshold{Value: candidates[pos], Direction: dir}
	res.TrainAccuracy = cur
	return res, nil
}

// CalibrateBlackBox selects a threshold from benign scores alone using the
// paper's percentile rule: with percentile p (e.g. 1, 2 or 3), the boundary
// admits all but the most extreme p% of benign scores in the attack
// direction, fixing the training FRR at ~p%.
func CalibrateBlackBox(benign []float64, percentile float64, dir Direction) (Threshold, error) {
	if len(benign) == 0 {
		return Threshold{}, fmt.Errorf("detect: black-box calibration needs benign scores")
	}
	if percentile <= 0 || percentile >= 50 {
		return Threshold{}, fmt.Errorf("detect: percentile %v outside (0,50)", percentile)
	}
	if dir != Above && dir != Below {
		return Threshold{}, fmt.Errorf("detect: invalid direction %d", int(dir))
	}
	var p float64
	if dir == Above {
		p = 100 - percentile
	} else {
		p = percentile
	}
	v, err := stats.Percentile(benign, p)
	if err != nil {
		return Threshold{}, fmt.Errorf("detect: percentile: %w", err)
	}
	return Threshold{Value: v, Direction: dir}, nil
}

// Calibration is a serializable bundle of per-method thresholds, so a
// threshold picked on one dataset can be persisted and applied to another —
// the paper's "pre-determined detection threshold that is generic".
type Calibration struct {
	// Setting records how the thresholds were obtained ("white-box" or
	// "black-box").
	Setting string `json:"setting"`
	// Thresholds maps scorer name (e.g. "scaling/MSE") to its boundary.
	Thresholds map[string]Threshold `json:"thresholds"`
}

// NewCalibration creates an empty calibration for the given setting.
func NewCalibration(setting string) *Calibration {
	return &Calibration{Setting: setting, Thresholds: make(map[string]Threshold)}
}

// Set stores a method threshold.
func (c *Calibration) Set(method string, t Threshold) { c.Thresholds[method] = t }

// Get fetches a method threshold.
func (c *Calibration) Get(method string) (Threshold, bool) {
	t, ok := c.Thresholds[method]
	return t, ok
}

// MarshalJSON is the default; UnmarshalCalibration parses a persisted one.
func UnmarshalCalibration(data []byte) (*Calibration, error) {
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("detect: parse calibration: %w", err)
	}
	if c.Thresholds == nil {
		c.Thresholds = make(map[string]Threshold)
	}
	for name, t := range c.Thresholds {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("detect: calibration %q: %w", name, err)
		}
	}
	return &c, nil
}
