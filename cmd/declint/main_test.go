package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/analysis"
)

const fixtures = "../../internal/analysis/testdata"

func runDeclint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestViolatingFixturesExitNonzero: every violating fixture module fails
// with exit 1 and reports the expected check at a file:line position.
func TestViolatingFixturesExitNonzero(t *testing.T) {
	cases := []struct {
		fixture string
		check   string
		file    string
	}{
		{"norawgo", "noraw-go", "pool.go"},
		{"determinism", "determinism", "bad.go"},
		{"floateq", "floateq", "cmp.go"},
		{"naninput", "naninput", "api.go"},
		{"errdrop", "errdrop", "drop.go"},
		{"suppress", "declint", "bad.go"},
		{"parsafe", "parsafe", "par.go"},
		{"hotalloc", "hotalloc", "hot.go"},
		{"detprop", "detprop", "resize.go"},
		{"ctxflow", "ctxflow", "run.go"},
		{"poollife", "poollife", "pool.go"},
		{"memopure", "memopure", "stages.go"},
		{"obscover", "obscover", "stages.go"},
		{"lockorder", "lockorder", "store.go"},
		{"golife", "golife", "life.go"},
		{"chandisc", "chandisc", "pipe.go"},
		{"deadline", "deadline", "serve.go"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			code, stdout, stderr := runDeclint(t, filepath.Join(fixtures, tc.fixture))
			if code != 1 {
				t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stdout, ": "+tc.check+": ") {
				t.Errorf("stdout lacks check %q:\n%s", tc.check, stdout)
			}
			if !strings.Contains(stdout, tc.file+":") {
				t.Errorf("stdout lacks file:line for %s:\n%s", tc.file, stdout)
			}
			if !strings.Contains(stderr, "finding(s)") {
				t.Errorf("stderr lacks the findings summary:\n%s", stderr)
			}
		})
	}
}

// TestChecksFlagScopesRun: -checks with an unrelated check exits clean on a
// fixture that only violates another one.
func TestChecksFlagScopesRun(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-checks", "errdrop", filepath.Join(fixtures, "floateq"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s", code, stdout)
	}
	code, stdout, _ = runDeclint(t, "-checks", "floateq", filepath.Join(fixtures, "floateq"))
	if code != 1 || !strings.Contains(stdout, "floateq") {
		t.Fatalf("exit code = %d, want 1 with floateq findings:\n%s", code, stdout)
	}
}

func TestUnknownCheckFlag(t *testing.T) {
	code, _, stderr := runDeclint(t, "-checks", "bogus", filepath.Join(fixtures, "errdrop"))
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr lacks unknown-check error:\n%s", stderr)
	}
}

// TestUnknownCheckSuggestion: a near-miss name earns a did-you-mean hint and
// fails before the module is even loaded (the target does not exist).
func TestUnknownCheckSuggestion(t *testing.T) {
	code, _, stderr := runDeclint(t, "-checks", "lockorders", "no/such/dir")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `did you mean "lockorder"?`) {
		t.Errorf("stderr lacks the suggestion:\n%s", stderr)
	}
	code, _, stderr = runDeclint(t, "-checks", "zzzzzz", "no/such/dir")
	if code != 2 || strings.Contains(stderr, "did you mean") {
		t.Errorf("hopeless typo should get no suggestion (code %d):\n%s", code, stderr)
	}
}

// TestListFlag pins the -list output exactly: check names are suppression
// syntax and CI greps this output, so any drift is a deliberate API change.
func TestListFlag(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	want := strings.Join([]string{
		"noraw-go     raw goroutines / WaitGroup pools outside internal/parallel",
		"determinism  time.Now, math/rand, map-ordered output in kernel packages",
		"floateq      exact ==/!= on float operands",
		"naninput     exported tensor functions without NaN/Inf guard or nan-ok marker",
		"errdrop      _ = discards of error-returning calls",
		"obsonly      profiling/exposition imports outside internal/obs and cmd/",
		"parsafe      parallel closures writing captured state at non-chunk-derived indices",
		"hotalloc     allocations reachable from //declint:hot kernel functions",
		"detprop      transitive time/rand/map-order taint reaching kernel packages",
		"ctxflow      dropped or re-minted contexts in internal library code",
		"poollife     pooled buffers not released exactly once on every path",
		"memopure     memoized stage closures that are not pure functions of their key",
		"obscover     pipeline stages, caches or event emitters missing obs instrumentation",
		"lockorder    lock-order cycles, double-locks, and blocking calls under a held mutex",
		"golife       goroutines without a provable termination signal and join",
		"chandisc     unguarded ctx-path sends, timer leaks, send-after-close, magic buffers",
		"deadline     ctx-less exported entry points reaching unbounded blocking operations",
		"",
	}, "\n")
	if stdout != want {
		t.Errorf("-list output changed\ngot:\n%s\nwant:\n%s", stdout, want)
	}
}

// TestJSONOutput: -json emits a decodable array carrying suppressed findings
// (marked, not counted) alongside the live ones.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-json", filepath.Join(fixtures, "hotalloc"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s", code, stdout)
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout)
	}
	live, suppressed := 0, 0
	for _, f := range findings {
		if f.Check == "" || f.Pos.Filename == "" || f.Pos.Line == 0 {
			t.Errorf("finding missing fields: %+v", f)
		}
		if f.Suppressed {
			suppressed++
		} else {
			live++
		}
	}
	if live != 6 {
		t.Errorf("live findings = %d, want 6", live)
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the waived Scratch make)", suppressed)
	}
}

// TestJSONCleanTreeIsEmptyArray: a clean target yields `[]`, not `null`.
func TestJSONCleanTreeIsEmptyArray(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-json", filepath.Join(fixtures, "callgraph"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s", code, stdout)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean-tree JSON = %q, want []", strings.TrimSpace(stdout))
	}
}

// TestGitHubOutput: -github renders one ::error annotation per finding.
func TestGitHubOutput(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-github", filepath.Join(fixtures, "errdrop"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s", code, stdout)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("annotation count = %d, want 2:\n%s", len(lines), stdout)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") ||
			!strings.Contains(line, ",line=") || !strings.Contains(line, "::errdrop: ") {
			t.Errorf("malformed annotation: %s", line)
		}
	}
}

func TestJSONGitHubExclusive(t *testing.T) {
	code, _, stderr := runDeclint(t, "-json", "-github", filepath.Join(fixtures, "errdrop"))
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("exit code = %d (stderr %q), want 2 with exclusivity error", code, stderr)
	}
}

// TestWaiversOutput: -waivers renders a markdown row per suppressed finding
// carrying the directive's reason, and ignores live findings.
func TestWaiversOutput(t *testing.T) {
	code, stdout, _ := runDeclint(t, "-waivers", filepath.Join(fixtures, "hotalloc"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (live findings still fail)\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "| Check | Location | Reason |") {
		t.Errorf("output lacks the table header:\n%s", stdout)
	}
	rows := 0
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "| hotalloc |") {
			rows++
			if !strings.Contains(line, "hot.go:29") ||
				!strings.Contains(line, "setup-time cold path, called once per plan") {
				t.Errorf("waiver row lacks location or reason: %s", line)
			}
		}
	}
	if rows != 1 {
		t.Errorf("hotalloc waiver rows = %d, want 1:\n%s", rows, stdout)
	}
	code, stdout, _ = runDeclint(t, "-waivers", filepath.Join(fixtures, "callgraph"))
	if code != 0 || !strings.Contains(stdout, "No waivers are in effect.") {
		t.Fatalf("clean tree: code=%d, want 0 with empty inventory\n%s", code, stdout)
	}
	code, _, stderr := runDeclint(t, "-waivers", "-json", filepath.Join(fixtures, "errdrop"))
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("-waivers -json: code=%d (stderr %q), want 2", code, stderr)
	}
}

// TestSubtreeTargets: a non-testdata directory is analyzed as a subtree of
// its enclosing module — the whole module loads (dataflow checks need the
// full graph) but findings and exit status are scoped to the subtree. Two
// subtree targets of the same module share one load.
func TestSubtreeTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the entire enclosing module")
	}
	code, stdout, stderr := runDeclint(t, ".", "../../internal/analysis")
	if code != 0 {
		t.Fatalf("self-check exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("self-check produced findings:\n%s", stdout)
	}
}

// TestCacheFlagPopulates: -cache writes summary files and leaves findings
// unchanged on the warm rerun.
func TestCacheFlagPopulates(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(fixtures, "hotalloc")
	code1, out1, _ := runDeclint(t, "-cache", dir, target)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cold run wrote no cache entries")
	}
	code2, out2, _ := runDeclint(t, "-cache", dir, target)
	if code1 != code2 || out1 != out2 {
		t.Errorf("warm run diverged: code %d vs %d\ncold:\n%s\nwarm:\n%s", code1, code2, out1, out2)
	}
}
