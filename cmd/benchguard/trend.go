package main

// Trend mode: instead of comparing two bench output files, walk every
// committed BENCH_*.json snapshot under a directory and fail when any
// tracked kernel's latest median ns/op regresses more than the budget
// against its best committed median — the perf trajectory may plateau
// but must not silently slide back. Past medians are machine-drift
// normalized first (see driftFactors): the shared reference baselines
// calibrate how fast the machine ran on each snapshot day, so a slow
// benchmarking day doesn't read as a regression. The mode also renders
// the per-kernel history table (plus the fast-path speedup table from
// the latest snapshot) between markers in a markdown file, so the
// committed README is provably generated from the committed snapshots.

import (
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strings"

	"decamouflage/internal/benchfmt"
)

// trendBeginMarker/trendEndMarker delimit the generated region inside
// the -trend-write target. Everything between them is replaced on each
// run; CI's `git diff --exit-code` then enforces that the committed
// table matches the committed snapshots.
const (
	trendBeginMarker = "<!-- benchtrend:begin -->"
	trendEndMarker   = "<!-- benchtrend:end -->"
)

// referenceBench matches benchmarks that exist as comparison baselines —
// naive kernels, retained pre-optimization paths, float counterparts of
// integer fast paths. They appear in the speedup table but are not
// regression-gated: a "regression" in a reference is meaningless (no one
// ships it), and gating it would forbid ever simplifying baseline code.
// (CenteredSpectrum256 is the unpooled reference of CenteredSpectrumInto256 —
// the pattern does not match the Into name — and BuildCoeff is the uncached
// construction CoeffFor's memoization exists to avoid.)
var referenceBench = regexp.MustCompile(`Naive|Unplanned|Legacy|PerColumn|Float256|CenteredSpectrum256|BuildCoeff`)

// speedupPairs names the fast path / reference pairs whose ratio the
// trajectory table reports from the latest snapshot. Pairs whose members
// are absent from the snapshot are skipped, so the tool keeps working on
// histories that predate a kernel.
var speedupPairs = []struct {
	fast, ref, label string
}{
	{"BenchmarkMinFilterU8256", "BenchmarkMinFilterFloat256", "uint8 vHGW min filter"},
	{"BenchmarkMedianU8256", "BenchmarkMedianFilter256Serial", "uint8 histogram median"},
	{"BenchmarkBoxFixed256", "BenchmarkBoxFilter256Serial", "int32 running-sum box"},
	{"BenchmarkResizeFixed256", "BenchmarkResize256Serial", "Q1.15 fixed-point resize"},
	{"BenchmarkCoeffFor64to16", "BenchmarkBuildCoeff64to16", "memoized coefficient lookup"},
	{"BenchmarkFFT2DBlocked256", "BenchmarkFFT2DPerColumn256", "cache-blocked FFT columns"},
	{"BenchmarkCenteredSpectrumInto256", "BenchmarkCenteredSpectrum256", "pooled centered spectrum"},
	{"BenchmarkEnsemblePipeline", "BenchmarkEnsembleLegacy", "stage-DAG ensemble"},
	{"BenchmarkEnsembleU8", "BenchmarkEnsemblePipeline", "quantized ensemble"},
}

// runTrend is the -trend entry point. Exit codes match compare mode:
// 0 trajectory healthy, 1 a tracked kernel regressed over budget, 2 on
// unreadable snapshots or a -trend-write target without markers.
func runTrend(dir string, maxRegression float64, writePath string, stdout, stderr io.Writer) int {
	snaps, err := benchfmt.LoadSnapshots(dir)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: trend: %v\n", err)
		return 2
	}
	if len(snaps) == 0 {
		fmt.Fprintf(stderr, "benchguard: trend: no BENCH_*.json snapshots under %s\n", dir)
		return 2
	}
	comparable, excluded := splitByEnvironment(snaps)
	for _, s := range excluded {
		fmt.Fprintf(stdout, "benchguard: trend: excluding %s: environment %s differs from latest\n",
			s.Path, s.Doc.Env.Fingerprint())
	}
	latest := comparable[len(comparable)-1]
	kernels := trackedKernels(latest.Doc.Benchmarks)
	if len(kernels) == 0 {
		fmt.Fprintf(stderr, "benchguard: trend: latest snapshot %s has no tracked kernels\n", latest.Path)
		return 2
	}
	drift := driftFactors(comparable, stdout)

	failed := 0
	rows := make([]trendRow, 0, len(kernels))
	for _, k := range kernels {
		row := trendRow{name: k, medians: make([]float64, len(comparable))}
		for i, s := range comparable {
			row.medians[i] = benchfmt.MedianNsPerOp(benchfmt.Select(s.Doc.Benchmarks, k))
		}
		row.latest = row.medians[len(row.medians)-1]
		for i, m := range row.medians {
			if m <= 0 {
				continue
			}
			// Gate in the latest run's machine units: a past median is
			// scaled by its snapshot's drift factor before competing for
			// best, so a globally slow or fast benchmarking day doesn't
			// masquerade as a code change.
			if adj := m * drift[i]; row.best <= 0 || adj < row.best {
				row.best = adj
			}
		}
		if row.best > 0 {
			row.deltaPct = (row.latest/row.best - 1) * 100
		}
		rows = append(rows, row)
		fmt.Fprintf(stdout, "benchguard: trend: %s latest %s, best %s, delta %+.1f%% (budget %.1f%%)\n",
			k, formatNs(row.latest), formatNs(row.best), row.deltaPct, maxRegression)
		if row.deltaPct > maxRegression {
			fmt.Fprintf(stderr, "benchguard: FAIL: %s regressed %+.1f%% against its best committed median (budget %.1f%%)\n",
				k, row.deltaPct, maxRegression)
			failed++
		}
	}

	if writePath != "" {
		md := renderTrendMarkdown(comparable, excluded, rows, drift)
		if err := replaceMarkedRegion(writePath, md); err != nil {
			fmt.Fprintf(stderr, "benchguard: trend: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchguard: trend: wrote table to %s\n", writePath)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// splitByEnvironment partitions snapshots into those comparable with the
// latest one and those from a different machine. A snapshot without an
// environment record predates the field and is assumed to come from the
// reference container documented in bench/README.md, so it stays
// comparable — the point is to flag known-different machines, not to
// discard history.
func splitByEnvironment(snaps []benchfmt.Snapshot) (comparable, excluded []benchfmt.Snapshot) {
	ref := snaps[len(snaps)-1].Doc.Env.Fingerprint()
	for _, s := range snaps {
		fp := s.Doc.Env.Fingerprint()
		if fp == "" || ref == "" || fp == ref {
			comparable = append(comparable, s)
		} else {
			excluded = append(excluded, s)
		}
	}
	return comparable, excluded
}

// driftFactors computes one machine-drift normalizer per comparable
// snapshot: the geometric mean, over the reference baselines shared with
// the latest snapshot, of latest/past median ratios. The reference
// implementations never change, so any movement in their medians
// measures the machine (CPU steal, frequency, neighbors), not the code;
// multiplying a past snapshot's medians by its factor re-expresses them
// in the latest run's machine units. The latest snapshot, and any
// snapshot sharing no reference baseline with it, gets factor 1.
func driftFactors(comparable []benchfmt.Snapshot, stdout io.Writer) []float64 {
	latest := comparable[len(comparable)-1]
	var refs []string // first-appearance order: geomean must sum deterministically
	med := map[string]float64{}
	for _, r := range latest.Doc.Benchmarks {
		base := benchfmt.BaseName(r.Name)
		if !referenceBench.MatchString(base) {
			continue
		}
		if _, ok := med[base]; ok {
			continue
		}
		if m := benchfmt.MedianNsPerOp(benchfmt.Select(latest.Doc.Benchmarks, base)); m > 0 {
			refs = append(refs, base)
			med[base] = m
		}
	}
	out := make([]float64, len(comparable))
	for i := range out {
		out[i] = 1
	}
	for i, s := range comparable[:len(comparable)-1] {
		var logSum float64
		n := 0
		for _, base := range refs {
			if past := benchfmt.MedianNsPerOp(benchfmt.Select(s.Doc.Benchmarks, base)); past > 0 {
				logSum += math.Log(med[base] / past)
				n++
			}
		}
		if n > 0 {
			out[i] = math.Exp(logSum / float64(n))
			fmt.Fprintf(stdout, "benchguard: trend: %s machine drift ×%.2f vs latest (geomean over %d reference baselines)\n",
				s.Doc.Date, out[i], n)
		}
	}
	return out
}

// trackedKernels returns the unique regression-gated base names in
// first-appearance order (map iteration would make the rendered table
// nondeterministic and trip the freshness gate).
func trackedKernels(results []benchfmt.Result) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range results {
		base := benchfmt.BaseName(r.Name)
		if seen[base] || referenceBench.MatchString(base) {
			continue
		}
		seen[base] = true
		out = append(out, base)
	}
	return out
}

// trendRow is one tracked kernel's history across the comparable
// snapshots: per-snapshot raw medians (0 where the kernel predates the
// snapshot), the drift-adjusted best, the latest median, and the gated
// delta.
type trendRow struct {
	name     string
	medians  []float64
	best     float64
	latest   float64
	deltaPct float64
}

// formatNs renders a ns/op median at human scale; the zero value (kernel
// absent from a snapshot) renders as a dash.
func formatNs(ns float64) string {
	switch {
	case ns <= 0:
		return "—"
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// renderTrendMarkdown builds the generated README region: the tracked
// kernel history table, the fast-path speedup table from the latest
// snapshot, and a note for any excluded cross-machine snapshots.
func renderTrendMarkdown(comparable, excluded []benchfmt.Snapshot, rows []trendRow, drift []float64) string {
	var b strings.Builder
	latest := comparable[len(comparable)-1]

	b.WriteString("Median ns/op per tracked kernel across the committed snapshots\n")
	b.WriteString("(reference baselines are listed in the speedup table only; Δ compares\n")
	b.WriteString("the latest median against the best committed one):\n\n")
	b.WriteString("| Benchmark |")
	for _, s := range comparable {
		fmt.Fprintf(&b, " %s |", s.Doc.Date)
	}
	b.WriteString(" Δ vs best |\n|---|")
	for range comparable {
		b.WriteString("---:|")
	}
	b.WriteString("---:|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s |", strings.TrimPrefix(r.name, "Benchmark"))
		for _, m := range r.medians {
			fmt.Fprintf(&b, " %s |", formatNs(m))
		}
		fmt.Fprintf(&b, " %+.1f%% |\n", r.deltaPct)
	}
	var driftNotes []string
	for i, s := range comparable[:len(comparable)-1] {
		// Compare the rendered form, not the float: a factor that would
		// print as ×1.00 is not worth a footnote.
		if f := fmt.Sprintf("%.2f", drift[i]); f != "1.00" {
			driftNotes = append(driftNotes, fmt.Sprintf("%s ×%s", s.Doc.Date, f))
		}
	}
	if len(driftNotes) > 0 {
		fmt.Fprintf(&b, "\nΔ is machine-drift adjusted: each past snapshot's medians are scaled by\nthe geometric-mean ratio of its shared reference baselines before\ncompeting for best (%s).\n", strings.Join(driftNotes, ", "))
	}

	var pairs [][4]string
	for _, p := range speedupPairs {
		fast := benchfmt.MedianNsPerOp(benchfmt.Select(latest.Doc.Benchmarks, p.fast))
		ref := benchfmt.MedianNsPerOp(benchfmt.Select(latest.Doc.Benchmarks, p.ref))
		if fast <= 0 || ref <= 0 {
			continue
		}
		pairs = append(pairs, [4]string{p.label, formatNs(ref), formatNs(fast),
			fmt.Sprintf("%.2f×", ref/fast)})
	}
	if len(pairs) > 0 {
		fmt.Fprintf(&b, "\nFast-path speedups in the latest snapshot (%s):\n\n", latest.Doc.Date)
		b.WriteString("| Kernel | Reference | Fast path | Speedup |\n|---|---:|---:|---:|\n")
		for _, p := range pairs {
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", p[0], p[1], p[2], p[3])
		}
	}

	if env := latest.Doc.Env; env != nil {
		fmt.Fprintf(&b, "\nEnvironment: %s, %s (snapshots without a recorded environment are\nassumed to come from the reference container).\n",
			env.Fingerprint(), env.GoVersion)
	}
	for _, s := range excluded {
		fmt.Fprintf(&b, "\nExcluded (different environment): `%s` — %s.\n",
			s.Path, s.Doc.Env.Fingerprint())
	}
	return b.String()
}

// replaceMarkedRegion swaps the text between the trend markers in path
// for content, keeping everything outside untouched. Missing markers are
// an error rather than an append: the target file decides where the
// generated region lives.
func replaceMarkedRegion(path, content string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(buf)
	begin := strings.Index(text, trendBeginMarker)
	end := strings.Index(text, trendEndMarker)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("%s: missing %s / %s markers", path, trendBeginMarker, trendEndMarker)
	}
	out := text[:begin+len(trendBeginMarker)] + "\n" + content + text[end:]
	return os.WriteFile(path, []byte(out), 0o644)
}
