// Package obs is a fixture standing in for a serving package: exported
// ctx-less entry points that reach unbounded blocking — a raw channel
// receive, a direct sleep, and a sleep behind a helper chain — plus the
// clean ctx-threaded shape.
package obs

import (
	"context"
	"time"
)

// Wait blocks on a raw receive with no deadline.
func Wait(ch chan int) int {
	return <-ch
}

// Settle sleeps directly.
func Settle() {
	time.Sleep(time.Millisecond)
}

// Converge reaches the sleep through a helper chain.
func Converge() {
	settleOnce()
}

func settleOnce() {
	nap()
}

func nap() {
	time.Sleep(time.Millisecond)
}

// WaitCtx is the clean shape: the caller's ctx bounds the wait.
func WaitCtx(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}
