// Package stats provides the descriptive statistics used by Decamouflage's
// threshold calibration and evaluation harness: moments, percentiles,
// histograms, normal fits, and distribution-overlap measures.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty indicates an operation that requires at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MeanStd returns both the mean and population standard deviation in one
// pass over xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return m, math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the smallest and largest values in xs.
// It returns an error for an empty slice.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks (the same convention as
// numpy.percentile's default). It returns an error for an empty slice or an
// out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// NormalFit holds the parameters of a normal distribution fitted to data.
type NormalFit struct {
	Mean float64
	Std  float64
	N    int
}

// FitNormal fits a normal distribution to xs by the method of moments.
func FitNormal(xs []float64) (NormalFit, error) {
	if len(xs) == 0 {
		return NormalFit{}, ErrEmpty
	}
	m, s := MeanStd(xs)
	return NormalFit{Mean: m, Std: s, N: len(xs)}, nil
}

// CDF evaluates the cumulative distribution function of the fitted normal.
func (f NormalFit) CDF(x float64) float64 {
	//declint:ignore floateq an exactly-zero std marks the degenerate point-mass fit
	if f.Std == 0 {
		if x < f.Mean {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-f.Mean)/(f.Std*math.Sqrt2)))
}

// Quantile returns the value below which fraction q (in (0,1)) of the
// fitted normal's mass lies, via bisection on the CDF.
func (f NormalFit) Quantile(q float64) (float64, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of range (0,1)", q)
	}
	//declint:ignore floateq an exactly-zero std marks the degenerate point-mass fit
	if f.Std == 0 {
		return f.Mean, nil
	}
	lo, hi := f.Mean-10*f.Std, f.Mean+10*f.Std
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f.CDF(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// OverlapCoefficient estimates the overlap between the empirical
// distributions of a and b as the shared area of their normalized
// histograms over a common range with the given number of bins. It returns
// a value in [0,1] where 0 means perfectly separable and 1 means identical.
// This quantifies the paper's Appendix-A observation that benign and attack
// PSNR histograms are "highly overlapped" while MSE/SSIM are separable.
func OverlapCoefficient(a, b []float64, bins int) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	if bins <= 0 {
		return 0, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	loA, hiA, _ := MinMax(a)
	loB, hiB, _ := MinMax(b)
	lo, hi := math.Min(loA, loB), math.Max(hiA, hiB)
	//declint:ignore floateq a degenerate range needs exact detection before padding
	if lo == hi {
		return 1, nil // all mass in one point for both
	}
	ha := binCounts(a, lo, hi, bins)
	hb := binCounts(b, lo, hi, bins)
	var overlap float64
	for i := 0; i < bins; i++ {
		pa := float64(ha[i]) / float64(len(a))
		pb := float64(hb[i]) / float64(len(b))
		overlap += math.Min(pa, pb)
	}
	return overlap, nil
}

func binCounts(xs []float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	scale := float64(bins) / (hi - lo)
	for _, x := range xs {
		i := int((x - lo) * scale)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// Histogram is a fixed-range binned view of a sample set, used to render
// the paper's distribution figures.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [lo, hi]. Samples outside the range are clamped into the edge bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v,%v]", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: binCounts(xs, lo, hi, bins), Total: len(xs)}, nil
}

// AutoHistogram bins xs across its own min-max range.
func AutoHistogram(xs []float64, bins int) (*Histogram, error) {
	lo, hi, err := MinMax(xs)
	if err != nil {
		return nil, err
	}
	//declint:ignore floateq a degenerate range needs exact detection before padding
	if lo == hi {
		hi = lo + 1
	}
	return NewHistogram(xs, lo, hi, bins)
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// MaxCount returns the largest bin count.
func (h *Histogram) MaxCount() int {
	mx := 0
	for _, c := range h.Counts {
		if c > mx {
			mx = c
		}
	}
	return mx
}
