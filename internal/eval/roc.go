package eval

import (
	"errors"
	"sort"

	"decamouflage/internal/detect"
)

// ROCPoint is one operating point of a score-threshold detector.
type ROCPoint struct {
	// FPR is the false-positive rate (benign flagged as attack) and TPR
	// the true-positive rate (attacks flagged) at this threshold.
	FPR, TPR float64
	// Threshold is the score boundary realizing the point.
	Threshold float64
}

// ROC computes the receiver operating characteristic of a score metric
// given labelled benign and attack score samples and the direction in
// which larger/smaller scores indicate attacks. Points are ordered by
// increasing FPR. The second return value is the area under the curve
// (AUC) computed by the trapezoid rule; 1.0 is a perfect detector, 0.5 a
// coin flip.
func ROC(benign, attacks []float64, dir detect.Direction) ([]ROCPoint, float64, error) {
	if len(benign) == 0 || len(attacks) == 0 {
		return nil, 0, errors.New("eval: ROC needs both benign and attack scores")
	}
	if dir != detect.Above && dir != detect.Below {
		return nil, 0, errors.New("eval: invalid ROC direction")
	}
	// Orient scores so that larger always means "more attack-like".
	orient := func(x float64) float64 {
		if dir == detect.Below {
			return -x
		}
		return x
	}
	type sample struct {
		score  float64
		attack bool
	}
	samples := make([]sample, 0, len(benign)+len(attacks))
	for _, s := range benign {
		samples = append(samples, sample{orient(s), false})
	}
	for _, s := range attacks {
		samples = append(samples, sample{orient(s), true})
	}
	// Descending score: thresholds sweep from strict to lax.
	sort.Slice(samples, func(i, j int) bool { return samples[i].score > samples[j].score })

	var points []ROCPoint
	tp, fp := 0, 0
	points = append(points, ROCPoint{FPR: 0, TPR: 0, Threshold: samples[0].score + 1})
	for i := 0; i < len(samples); {
		// Process ties together so the curve is well-defined.
		j := i
		//declint:ignore floateq ties must be grouped exactly for the ROC curve to be well-defined
		for j < len(samples) && samples[j].score == samples[i].score {
			if samples[j].attack {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, ROCPoint{
			FPR:       float64(fp) / float64(len(benign)),
			TPR:       float64(tp) / float64(len(attacks)),
			Threshold: samples[i].score,
		})
		i = j
	}
	// Trapezoid AUC.
	var auc float64
	for i := 1; i < len(points); i++ {
		auc += (points[i].FPR - points[i-1].FPR) * (points[i].TPR + points[i-1].TPR) / 2
	}
	return points, auc, nil
}
