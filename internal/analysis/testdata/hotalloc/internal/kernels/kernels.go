// Fixture helper: an allocating function that is itself unmarked but sits
// inside a hot root's static call closure.
package kernels

// Fill rebuilds its scratch on every call.
func Fill(out []float64) {
	tmp := make([]float64, len(out))
	copy(out, tmp)
}
