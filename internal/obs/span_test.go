package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestStartSpanUntraced(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("untraced context should yield a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("untraced StartSpan should return the context unchanged")
	}
	// The nil span must absorb the full API.
	sp.End()
	sp.AttrString("k", "v")
	sp.AttrFloat("f", 1.5)
	sp.AttrInt("i", 2)
	sp.AttrBool("b", true)
	if sp.Duration() != 0 || sp.Name() != "" {
		t.Fatal("nil span should read as zero")
	}
}

func TestTraceTreeAndRender(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	ctx, tr := WithTrace(context.Background(), "detect")
	cctx, child := StartSpan(ctx, "scaling/MSE")
	child.AttrFloat("score", 123.456)
	child.AttrBool("attack", true)
	_, grand := StartSpan(cctx, "downscale")
	grand.End()
	child.End()
	// A sibling started from the original ctx attaches to the root, not
	// to the closed child.
	_, sib := StartSpan(ctx, "filtering/minmax")
	sib.End()
	tr.End()

	root := tr.Root()
	if root.Name() != "detect" {
		t.Fatalf("root name = %q", root.Name())
	}
	if n := len(root.children); n != 2 {
		t.Fatalf("root children = %d, want 2", n)
	}
	if root.children[0] != child || len(root.children[0].children) != 1 {
		t.Fatal("span tree mis-shaped")
	}

	var sb strings.Builder
	if err := tr.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "detect") {
		t.Fatalf("first line should be the root: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  scaling/MSE") {
		t.Fatalf("child should be indented: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    downscale") {
		t.Fatalf("grandchild should be doubly indented: %q", lines[2])
	}
	if !strings.Contains(lines[1], "score=123.456") || !strings.Contains(lines[1], "attack=true") {
		t.Fatalf("attrs missing from render: %q", lines[1])
	}
	if !strings.Contains(lines[1], "+") {
		t.Fatalf("child lines should carry a start offset: %q", lines[1])
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	_, tr := WithTrace(context.Background(), "x")
	sp := tr.Root()
	sp.End()
	d1 := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if d2 := sp.Duration(); d2 != d1 {
		t.Fatalf("second End changed duration: %v -> %v", d1, d2)
	}
}

func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.End()
	if tr.Root() != nil {
		t.Fatal("nil trace root should be nil")
	}
	var sb strings.Builder
	if err := tr.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatal("nil trace should render nothing")
	}
}

func TestStageFeedsSpanAndHistogram(t *testing.T) {
	withRecording(t)
	var h Histogram
	ctx, tr := WithTrace(context.Background(), "root")
	_, st := StartStage(ctx, "stage", &h)
	st.Span().AttrInt("n", 1)
	st.End()
	tr.End()
	if got := h.Count(); got != 1 {
		t.Fatalf("stage histogram count = %d, want 1", got)
	}
	if len(tr.Root().children) != 1 || tr.Root().children[0].Name() != "stage" {
		t.Fatal("stage span not attached to trace")
	}
}

func TestStageUntracedStillObserves(t *testing.T) {
	withRecording(t)
	var h Histogram
	_, st := StartStage(context.Background(), "stage", &h)
	if st.Span() != nil {
		t.Fatal("untraced stage should have no span")
	}
	st.End()
	if got := h.Count(); got != 1 {
		t.Fatalf("untraced stage histogram count = %d, want 1", got)
	}
}

func TestStageFullyDisabled(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	var h Histogram
	_, st := StartStage(context.Background(), "stage", &h)
	st.End()
	if got := h.Count(); got != 0 {
		t.Fatalf("disabled stage recorded %d observations", got)
	}
}

func TestStageNestsUnderStage(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	ctx, tr := WithTrace(context.Background(), "root")
	sctx, outer := StartStage(ctx, "outer", nil)
	_, inner := StartStage(sctx, "inner", nil)
	inner.End()
	outer.End()
	tr.End()
	root := tr.Root()
	if len(root.children) != 1 {
		t.Fatalf("root children = %d, want 1", len(root.children))
	}
	if kids := root.children[0].children; len(kids) != 1 || kids[0].Name() != "inner" {
		t.Fatal("inner stage should nest under outer stage")
	}
}
