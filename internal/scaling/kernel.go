// Package scaling implements the image resampling algorithms that
// image-scaling attacks exploit: nearest-neighbor, bilinear, bicubic,
// Lanczos and area interpolation, in both direct form and as explicit
// sparse coefficient matrices (scale(X) = L·X·Rᵀ).
//
// The default mode mirrors OpenCV/TensorFlow semantics: when downscaling,
// the interpolation kernel is NOT widened to cover the full source window
// (no antialiasing), so each output pixel depends on only a handful of
// source pixels. That property is precisely what the attack of Xiao et al.
// abuses; the Antialias option enables the widened (Pillow-style) kernels
// that act as a robust-scaling defense.
package scaling

import (
	"errors"
	"fmt"
	"math"
)

// Algorithm selects an interpolation method.
type Algorithm int

// Supported interpolation algorithms. The zero value is invalid so that an
// unset Options field is caught early.
const (
	// Nearest is nearest-neighbor sampling (OpenCV INTER_NEAREST-like).
	Nearest Algorithm = iota + 1
	// Bilinear is triangle-kernel interpolation (OpenCV INTER_LINEAR-like).
	Bilinear
	// Bicubic is Keys' cubic convolution with a = -0.75, matching OpenCV's
	// INTER_CUBIC constant.
	Bicubic
	// Lanczos is the 3-lobed Lanczos-windowed sinc (the common
	// high-quality default outside OpenCV).
	Lanczos
	// Area is box averaging over the source footprint (INTER_AREA). Area
	// is inherently antialiased and is one of the robust-scaling defenses
	// discussed by Quiring et al.
	Area
	// Lanczos4 is the 4-lobed Lanczos-windowed sinc, matching OpenCV's
	// INTER_LANCZOS4.
	Lanczos4
)

// ErrUnknownAlgorithm indicates an Algorithm value outside the enum.
var ErrUnknownAlgorithm = errors.New("scaling: unknown algorithm")

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Nearest:
		return "nearest"
	case Bilinear:
		return "bilinear"
	case Bicubic:
		return "bicubic"
	case Lanczos:
		return "lanczos"
	case Area:
		return "area"
	case Lanczos4:
		return "lanczos4"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a CLI-style name into an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "nearest", "nn":
		return Nearest, nil
	case "bilinear", "linear":
		return Bilinear, nil
	case "bicubic", "cubic":
		return Bicubic, nil
	case "lanczos":
		return Lanczos, nil
	case "lanczos4":
		return Lanczos4, nil
	case "area", "box":
		return Area, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, name)
	}
}

// Algorithms lists every supported algorithm, for sweeps over kernels.
func Algorithms() []Algorithm {
	return []Algorithm{Nearest, Bilinear, Bicubic, Lanczos, Area, Lanczos4}
}

// kernelFunc is a 1-D interpolation kernel with finite support: f(x) is
// nonzero only for |x| < support.
type kernelFunc struct {
	support float64
	f       func(x float64) float64
}

func triangleKernel() kernelFunc {
	return kernelFunc{
		support: 1,
		f: func(x float64) float64 {
			x = math.Abs(x)
			if x < 1 {
				return 1 - x
			}
			return 0
		},
	}
}

// cubicKernel is Keys' cubic convolution kernel with free parameter a.
// OpenCV uses a = -0.75, Pillow/Catmull-Rom uses a = -0.5.
func cubicKernel(a float64) kernelFunc {
	return kernelFunc{
		support: 2,
		f: func(x float64) float64 {
			x = math.Abs(x)
			switch {
			case x < 1:
				return (a+2)*x*x*x - (a+3)*x*x + 1
			case x < 2:
				return a*x*x*x - 5*a*x*x + 8*a*x - 4*a
			default:
				return 0
			}
		},
	}
}

func lanczosKernel(lobes float64) kernelFunc {
	return kernelFunc{
		support: lobes,
		f: func(x float64) float64 {
			//declint:ignore floateq sinc's removable singularity is exactly at zero
			if x == 0 {
				return 1
			}
			ax := math.Abs(x)
			if ax >= lobes {
				return 0
			}
			px := math.Pi * x
			return lobes * math.Sin(px) * math.Sin(px/lobes) / (px * px)
		},
	}
}

func boxKernel() kernelFunc {
	return kernelFunc{
		support: 0.5,
		f: func(x float64) float64 {
			if x >= -0.5 && x < 0.5 {
				return 1
			}
			return 0
		},
	}
}

func kernelFor(a Algorithm) (kernelFunc, error) {
	switch a {
	case Bilinear:
		return triangleKernel(), nil
	case Bicubic:
		return cubicKernel(-0.75), nil
	case Lanczos:
		return lanczosKernel(3), nil
	case Lanczos4:
		return lanczosKernel(4), nil
	case Area:
		return boxKernel(), nil
	case Nearest:
		// Nearest is handled as a special case in coefficient construction,
		// but expose a kernel anyway for generic code paths.
		return boxKernel(), nil
	default:
		return kernelFunc{}, fmt.Errorf("%w: %d", ErrUnknownAlgorithm, int(a))
	}
}
