//go:build pooltrace

package detect

// Runtime counterpart of declint's static poollife check: under the
// pooltrace build tag every pooled borrow is ledgered, and these tests
// assert the ledger balances — each Intermediates buffer released exactly
// once — on the happy path and, the hard case, when a batch is cancelled
// midway with workers still holding pooled substrates.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"decamouflage/internal/imgcore"
)

// rgbImage builds a 3-channel image so the gray stage must borrow a
// pooled conversion plane (single-channel inputs skip the pool).
func rgbImage(w, h int, seed float64) *imgcore.Image {
	pix := make([]float64, w*h*3)
	for i := range pix {
		pix[i] = float64(i%251)/251 + seed/1024
	}
	return &imgcore.Image{W: w, H: h, C: 3, Pix: pix}
}

// grayScorer is a PipelineScorer that forces the pooled gray substrate.
type grayScorer struct {
	after func() // runs once after the first completed score, if set
	once  sync.Once
}

func (s *grayScorer) Name() string { return "pooltrace/gray" }

func (s *grayScorer) Score(img *imgcore.Image) (float64, error) {
	return float64(img.W), nil
}

func (s *grayScorer) ScorePipeline(ctx context.Context, in *Intermediates) (float64, error) {
	g, err := in.gray(ctx)
	if err != nil {
		return 0, err
	}
	if s.after != nil {
		s.once.Do(s.after)
	}
	return g.Pix[0], nil
}

func grayEnsemble(t *testing.T, sc *grayScorer) *Ensemble {
	t.Helper()
	d, err := NewDetector(sc, Threshold{Value: 1e9, Direction: Above})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnsemble(d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPoolTraceBatchBalances: a full batch releases every pooled borrow
// exactly once.
func TestPoolTraceBatchBalances(t *testing.T) {
	poolTraceReset()
	e := grayEnsemble(t, &grayScorer{})
	imgs := make([]*imgcore.Image, 8)
	for i := range imgs {
		imgs[i] = rgbImage(16, 12, float64(i))
	}
	if _, err := e.DetectBatch(context.Background(), imgs); err != nil {
		t.Fatal(err)
	}
	if err := poolTraceVerify(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolTraceMidBatchCancellation cancels the batch from inside the
// first completed score, while other workers hold live pooled substrates
// and every worker still has images queued. The batch must error, and the
// ledger must still balance: cancellation may skip work, but it may never
// strand or double-free a pooled buffer.
func TestPoolTraceMidBatchCancellation(t *testing.T) {
	poolTraceReset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := grayEnsemble(t, &grayScorer{after: cancel})
	// Enough images that every worker has a next image queued when the
	// cancel lands, so the batch error is deterministic.
	imgs := make([]*imgcore.Image, 4*runtime.GOMAXPROCS(0)+8)
	for i := range imgs {
		imgs[i] = rgbImage(16, 12, float64(i))
	}
	_, err := e.DetectBatch(ctx, imgs)
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled in its chain", err)
	}
	if verr := poolTraceVerify(); verr != nil {
		t.Fatal(verr)
	}
}
