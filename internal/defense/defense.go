// Package defense implements the *prevention* baselines of Quiring et al.
// (USENIX Security 2020) that the paper positions Decamouflage against:
// robust scaling algorithms and image reconstruction. They are included so
// the X4 experiment can compare detection (Decamouflage) with prevention
// (these) on the same attacks.
package defense

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
)

// ErrNilScaler indicates a missing scaler argument.
var ErrNilScaler = errors.New("defense: scaler is required")

// RobustScaler returns a scaler with the same geometry as the given one but
// using an attack-resistant algorithm: area interpolation, whose kernel
// covers every source pixel so no slack pixels exist for an attacker.
func RobustScaler(s *scaling.Scaler) (*scaling.Scaler, error) {
	if s == nil {
		return nil, ErrNilScaler
	}
	srcW, srcH := s.SrcSize()
	dstW, dstH := s.DstSize()
	return scaling.NewScaler(srcW, srcH, dstW, dstH, scaling.Options{Algorithm: scaling.Area})
}

// RandomReconstruct implements Quiring et al.'s selective random
// substitution variant: every source pixel the vulnerable scaler samples is
// replaced by a uniformly chosen non-sampled neighbor within the window.
// Faster than the median variant and non-deterministic from the attacker's
// viewpoint; seed fixes the substitution pattern for reproducibility.
func RandomReconstruct(img *imgcore.Image, s *scaling.Scaler, window int, seed int64) (*imgcore.Image, error) {
	if s == nil {
		return nil, ErrNilScaler
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	srcW, srcH := s.SrcSize()
	if img.W != srcW || img.H != srcH {
		return nil, fmt.Errorf("defense: image %v does not match scaler source %dx%d", img, srcW, srcH)
	}
	useX := s.Horizontal().SourceUse()
	useY := s.Vertical().SourceUse()
	if window <= 0 {
		window = defaultWindow(s)
	}
	rng := rand.New(rand.NewSource(seed))
	out := img.Clone()
	var candidates []int
	for y := 0; y < img.H; y++ {
		//declint:ignore floateq the mask holds exact 0/1 values by construction
		if useY[y] == 0 {
			continue
		}
		for x := 0; x < img.W; x++ {
			//declint:ignore floateq the mask holds exact 0/1 values by construction
			if useX[x] == 0 {
				continue
			}
			candidates = candidates[:0]
			for dy := -window; dy <= window; dy++ {
				yy := y + dy
				if yy < 0 || yy >= img.H {
					continue
				}
				for dx := -window; dx <= window; dx++ {
					xx := x + dx
					if xx < 0 || xx >= img.W {
						continue
					}
					//declint:ignore floateq the mask holds exact 0/1 values by construction
					if useY[yy] != 0 && useX[xx] != 0 {
						continue
					}
					candidates = append(candidates, yy*img.W+xx)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			pick := candidates[rng.Intn(len(candidates))]
			for c := 0; c < img.C; c++ {
				out.Pix[(y*img.W+x)*img.C+c] = img.Pix[pick*img.C+c]
			}
		}
	}
	return out, nil
}

func defaultWindow(s *scaling.Scaler) int {
	srcW, srcH := s.SrcSize()
	sx := (srcW + s.Horizontal().M - 1) / s.Horizontal().M
	sy := (srcH + s.Vertical().M - 1) / s.Vertical().M
	w := sx
	if sy > w {
		w = sy
	}
	if w < 2 {
		w = 2
	}
	return w
}

// MedianReconstruct implements Quiring et al.'s reconstruction defense:
// every source pixel the vulnerable scaler actually samples is replaced by
// the median of its non-sampled neighbors, cleansing any embedded target
// pixels before the image reaches the scaler. The window parameter sets the
// neighborhood radius; 0 picks radius = ceil(scale factor).
func MedianReconstruct(img *imgcore.Image, s *scaling.Scaler, window int) (*imgcore.Image, error) {
	if s == nil {
		return nil, ErrNilScaler
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	srcW, srcH := s.SrcSize()
	if img.W != srcW || img.H != srcH {
		return nil, fmt.Errorf("defense: image %v does not match scaler source %dx%d", img, srcW, srcH)
	}
	useX := s.Horizontal().SourceUse()
	useY := s.Vertical().SourceUse()
	if window <= 0 {
		window = defaultWindow(s)
	}
	out := img.Clone()
	buf := make([]float64, 0, (2*window+1)*(2*window+1))
	for y := 0; y < img.H; y++ {
		//declint:ignore floateq the mask holds exact 0/1 values by construction
		if useY[y] == 0 {
			continue
		}
		for x := 0; x < img.W; x++ {
			//declint:ignore floateq the mask holds exact 0/1 values by construction
			if useX[x] == 0 {
				continue
			}
			// (x,y) is sampled by the scaler: reconstruct it per channel
			// from non-sampled neighbors.
			for c := 0; c < img.C; c++ {
				buf = buf[:0]
				for dy := -window; dy <= window; dy++ {
					yy := y + dy
					if yy < 0 || yy >= img.H {
						continue
					}
					for dx := -window; dx <= window; dx++ {
						xx := x + dx
						if xx < 0 || xx >= img.W {
							continue
						}
						//declint:ignore floateq the mask holds exact 0/1 values by construction
						if useY[yy] != 0 && useX[xx] != 0 {
							continue // skip other sampled pixels
						}
						buf = append(buf, img.At(xx, yy, c))
					}
				}
				if len(buf) == 0 {
					continue // fully sampled neighborhood; leave as-is
				}
				sort.Float64s(buf)
				out.Set(x, y, c, buf[len(buf)/2])
			}
		}
	}
	return out, nil
}
