package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"decamouflage/internal/obs"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	err := run([]string{"-run", "T1", "-n", "4", "-src", "32x32", "-dst", "8x8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallTable(t *testing.T) {
	err := run([]string{"-run", "T6", "-n", "4", "-src", "64x64", "-dst", "16x16"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-src", "junk"}); err == nil {
		t.Error("bad src accepted")
	}
	if err := run([]string{"-dst", "junk"}); err == nil {
		t.Error("bad dst accepted")
	}
	if err := run([]string{"-alg", "junk"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-run", "NOPE", "-n", "2"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunMetricsDump pins the end-of-run metrics dump: per-experiment
// latency histograms and the kernel caches' counters land in the file.
func TestRunMetricsDump(t *testing.T) {
	obs.Enable()
	enabled := obs.Enabled()
	obs.Disable()
	if !enabled {
		t.Skip("observability compiled out (noobs)")
	}
	t.Cleanup(obs.Disable)
	path := filepath.Join(t.TempDir(), "metrics.json")
	err := run([]string{"-run", "T1", "-n", "4", "-src", "32x32", "-dst", "8x8",
		"-metrics-out", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"experiments.T1.seconds", "scaling.coeff.misses"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, data)
		}
	}
}

func TestRunBadMetricsFormat(t *testing.T) {
	obs.Enable()
	enabled := obs.Enabled()
	obs.Disable()
	if !enabled {
		t.Skip("observability compiled out (noobs)")
	}
	t.Cleanup(obs.Disable)
	err := run([]string{"-run", "T1", "-n", "4", "-src", "32x32", "-dst", "8x8",
		"-metrics-out", filepath.Join(t.TempDir(), "m.txt"), "-metrics-format", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "metrics format") {
		t.Errorf("bad metrics format error = %v", err)
	}
}
