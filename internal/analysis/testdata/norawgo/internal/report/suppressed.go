// Package report is a fixture: an annotated, intentional goroutine that a
// well-formed suppression must silence.
package report

// Serve starts a long-lived background listener.
func Serve(handle func()) {
	//declint:ignore noraw-go long-lived server goroutine, not numeric fan-out
	go handle()
}

// ServeTrailing exercises the same-line suppression form.
func ServeTrailing(handle func()) {
	go handle() //declint:ignore noraw-go long-lived server goroutine, not numeric fan-out
}
