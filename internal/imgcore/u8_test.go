package imgcore

import (
	"math"
	"testing"

	"decamouflage/internal/testutil"
)

func TestU8RoundTripBitExact(t *testing.T) {
	for _, tc := range []struct{ w, h, c int }{
		{1, 1, 1}, {7, 3, 1}, {5, 9, 3}, {16, 1, 3}, {1, 16, 1},
	} {
		img := MustNew(tc.w, tc.h, tc.c)
		for i := range img.Pix {
			img.Pix[i] = float64((i * 37) % 256)
		}
		u, ok := img.ToU8()
		if !ok {
			t.Fatalf("%dx%dx%d: ToU8 rejected an integral image", tc.w, tc.h, tc.c)
		}
		back, err := FromU8(u)
		if err != nil {
			t.Fatal(err)
		}
		if !back.SameShape(img) {
			t.Fatalf("round trip shape %v, want %v", back, img)
		}
		if i := testutil.FirstDiff(back.Pix, img.Pix); i >= 0 {
			t.Fatalf("%dx%dx%d: round trip differs at %d: %v vs %v",
				tc.w, tc.h, tc.c, i, back.Pix[i], img.Pix[i])
		}
	}
}

func TestToU8RejectsNonIntegral(t *testing.T) {
	cases := []struct {
		name string
		v    float64
	}{
		{"fractional", 1.5},
		{"negative", -1},
		{"above-range", 256},
		{"nan", math.NaN()},
		{"posinf", math.Inf(1)},
		{"neginf", math.Inf(-1)},
		{"tiny-fraction", 128 + 1e-9},
	}
	for _, tc := range cases {
		img := MustNew(4, 4, 1)
		img.Pix[7] = tc.v
		if u, ok := img.ToU8(); ok || u != nil {
			t.Errorf("%s: ToU8 accepted sample %v", tc.name, tc.v)
		}
	}
}

func TestToU8AcceptsBoundaries(t *testing.T) {
	img := MustNew(2, 1, 1)
	img.Pix[0] = 0
	img.Pix[1] = 255
	u, ok := img.ToU8()
	if !ok {
		t.Fatal("ToU8 rejected boundary values 0 and 255")
	}
	if u.Pix[0] != 0 || u.Pix[1] != 255 {
		t.Fatalf("boundary conversion = %v", u.Pix)
	}
}

func TestToU8RejectsInvalidImage(t *testing.T) {
	var nilImg *Image
	if _, ok := nilImg.ToU8(); ok {
		t.Error("nil image converted")
	}
	bad := &Image{W: 3, H: 3, C: 1, Pix: make([]float64, 4)}
	if _, ok := bad.ToU8(); ok {
		t.Error("inconsistent image converted")
	}
}

func TestNewU8Validate(t *testing.T) {
	if _, err := NewU8(0, 4, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewU8(4, 4, 2); err == nil {
		t.Error("2 channels accepted")
	}
	u, err := NewU8(4, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := u.String(); got != "U8Image(4x3x3)" {
		t.Errorf("String() = %q", got)
	}
	var nilU *U8Image
	if err := nilU.Validate(); err == nil {
		t.Error("nil U8Image validated")
	}
	if got := nilU.String(); got != "U8Image(nil)" {
		t.Errorf("nil String() = %q", got)
	}
	short := &U8Image{W: 2, H: 2, C: 1, Pix: make([]uint8, 3)}
	if err := short.Validate(); err == nil {
		t.Error("short buffer validated")
	}
}

func TestU8AtSetClone(t *testing.T) {
	u, err := NewU8(3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	u.Set(2, 1, 2, 200)
	if got := u.At(2, 1, 2); got != 200 {
		t.Fatalf("At = %d, want 200", got)
	}
	cl := u.Clone()
	cl.Set(0, 0, 0, 9)
	if u.At(0, 0, 0) == 9 {
		t.Error("Clone shares backing storage")
	}
	if cl.At(2, 1, 2) != 200 {
		t.Error("Clone dropped a sample")
	}
}

func TestFromU8Into(t *testing.T) {
	u, err := NewU8(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u.Pix {
		u.Pix[i] = uint8(i * 31)
	}
	dst := MustNew(4, 2, 1).Fill(-1)
	if err := FromU8Into(u, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range u.Pix {
		if !testutil.BitEqual(dst.Pix[i], float64(v)) {
			t.Fatalf("sample %d = %v, want %d", i, dst.Pix[i], v)
		}
	}
	wrong := MustNew(2, 4, 1)
	if err := FromU8Into(u, wrong); err == nil {
		t.Error("shape mismatch accepted")
	}
}
