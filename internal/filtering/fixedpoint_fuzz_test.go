package filtering

import (
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

// FuzzFixedPointKernels cross-checks every integer fast path against its
// float64 oracle on adversarial geometry: 1×N and N×1 images, windows at
// least as large as the image, upscales and collapses to 1×1. The uint8
// min/max/median kernels must agree bit-for-bit (integer comparisons
// order exactly like float64 on 8-bit data); the int32 box and the Q1.15
// fixed-point resize must stay inside their pinned tolerance contracts.
func FuzzFixedPointKernels(f *testing.F) {
	f.Add(uint8(16), uint8(12), true, uint8(3), uint8(4), uint8(3), uint8(1), []byte{0, 128, 255})
	f.Add(uint8(1), uint8(24), false, uint8(2), uint8(1), uint8(8), uint8(2), []byte{9})        // 1×N
	f.Add(uint8(24), uint8(1), true, uint8(2), uint8(8), uint8(1), uint8(3), []byte{255, 1})    // N×1
	f.Add(uint8(5), uint8(7), false, uint8(11), uint8(3), uint8(2), uint8(4), []byte{4, 200})   // window ≥ image
	f.Add(uint8(9), uint8(9), true, uint8(4), uint8(13), uint8(17), uint8(5), []byte("prime"))  // upscale
	f.Add(uint8(8), uint8(8), false, uint8(6), uint8(1), uint8(1), uint8(0), []byte{17, 3, 99}) // collapse to 1×1
	f.Fuzz(func(t *testing.T, w8, h8 uint8, rgb bool, win8, dw8, dh8, alg8 uint8, pix []byte) {
		w, h := int(w8%33)+1, int(h8%33)+1
		channels := 1
		if rgb {
			channels = 3
		}
		u, err := imgcore.NewU8(w, h, channels)
		if err != nil {
			t.Fatal(err)
		}
		for i := range u.Pix {
			if len(pix) > 0 {
				u.Pix[i] = pix[i%len(pix)]
			}
		}
		img, err := imgcore.FromU8(u)
		if err != nil {
			t.Fatal(err)
		}
		size := 2 + int(win8%12)

		// Rank kernels: bit-exact against the float oracle.
		checkExact := func(name string, got, want *imgcore.Image, gerr, werr error) {
			t.Helper()
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("%s: error disagreement: u8=%v float=%v", name, gerr, werr)
			}
			if gerr != nil {
				return
			}
			if i := testutil.FirstDiff(got.Pix, want.Pix); i != -1 {
				t.Fatalf("%s: sample %d: u8 %v != float %v (%dx%dx%d window %d)",
					name, i, got.Pix[i], want.Pix[i], w, h, channels, size)
			}
		}
		widen := func(v *imgcore.U8Image, gerr error) *imgcore.Image {
			t.Helper()
			if gerr != nil {
				return nil
			}
			wide, err := imgcore.FromU8(v)
			if err != nil {
				t.Fatal(err)
			}
			return wide
		}
		minU8, gerr := MinimumU8(u, size)
		minF, werr := Minimum(img, size)
		checkExact("minimum", widen(minU8, gerr), minF, gerr, werr)
		maxU8, gerr := MaximumU8(u, size)
		maxF, werr := Maximum(img, size)
		checkExact("maximum", widen(maxU8, gerr), maxF, gerr, werr)
		medU8, gerr := MedianU8(u, size)
		medF, werr := Median(img, size)
		checkExact("median", medU8, medF, gerr, werr)

		// Box: int32 running sums against float64 running sums, inside the
		// pinned rounding tolerance.
		boxU8, gerr := BoxU8(u, size)
		boxF, werr := Box(img, size)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("box: error disagreement: u8=%v float=%v", gerr, werr)
		}
		if gerr == nil {
			for i := range boxF.Pix {
				if !testutil.ApproxEqual(boxU8.Pix[i], boxF.Pix[i], 1e-12, 1e-9) {
					t.Fatalf("box: sample %d: u8 %v vs float %v (%dx%dx%d window %d)",
						i, boxU8.Pix[i], boxF.Pix[i], w, h, channels, size)
				}
			}
		}

		// Resize: Q1.15 accumulators inside the FixedTolerance contract.
		algs := []scaling.Algorithm{scaling.Nearest, scaling.Bilinear, scaling.Bicubic,
			scaling.Lanczos, scaling.Lanczos4, scaling.Area}
		opts := scaling.Options{Algorithm: algs[int(alg8)%len(algs)]}
		dstW, dstH := int(dw8%33)+1, int(dh8%33)+1
		gotR, gerr := scaling.ResizeU8(u, dstW, dstH, opts)
		wantR, werr := scaling.Resize(img, dstW, dstH, opts)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("resize: error disagreement: u8=%v float=%v", gerr, werr)
		}
		if gerr != nil {
			return
		}
		horiz, err := scaling.CoeffFor(w, dstW, opts)
		if err != nil {
			t.Fatal(err)
		}
		vert, err := scaling.CoeffFor(h, dstH, opts)
		if err != nil {
			t.Fatal(err)
		}
		tol := scaling.FixedTolerance(vert, horiz)
		for i := range wantR.Pix {
			if !testutil.ApproxEqual(gotR.Pix[i], wantR.Pix[i], 0, tol) {
				t.Fatalf("resize: sample %d: u8 %v vs float %v (Δ=%v, tol %v, alg %v, %dx%d→%dx%d)",
					i, gotR.Pix[i], wantR.Pix[i], gotR.Pix[i]-wantR.Pix[i], tol,
					opts.Algorithm, w, h, dstW, dstH)
			}
		}
	})
}
