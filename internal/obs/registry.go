package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry owns named metrics. Registration (C/G/H) takes a mutex;
// recording on the returned handles is lock-free, so hot paths resolve
// their metrics once (package-level vars) and never touch the registry
// again. Names are free-form ("fourier.plan.hits", "detect.score.
// scaling/MSE.seconds"); Prometheus exposition sanitizes them.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// SetHelp attaches help text to a metric name, emitted as a # HELP line in
// Prometheus exposition (with exposition-format escaping applied).
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// Default is the process-wide registry every instrumented package records
// into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// C is shorthand for Default.Counter.
func C(name string) *Counter { return Default.Counter(name) }

// G is shorthand for Default.Gauge.
func G(name string) *Gauge { return Default.Gauge(name) }

// H is shorthand for Default.Histogram.
func H(name string) *Histogram { return Default.Histogram(name) }

// sortedKeys returns map keys in lexical order so exposition is stable.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	SumMs  float64 `json:"sum_ms"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// Exemplars links extreme observations to their trace IDs, one per
	// bucket that has seen a traced observation.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

func ms(d int64) float64 { return float64(d) / 1e6 }

// Snapshot captures the current value of every registered metric.
// Histograms with zero observations are included, so a dump documents the
// full metric surface.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count:     h.Count(),
			SumMs:     ms(int64(h.Sum())),
			MeanMs:    ms(int64(h.Mean())),
			P50Ms:     ms(int64(h.Quantile(0.50))),
			P95Ms:     ms(int64(h.Quantile(0.95))),
			P99Ms:     ms(int64(h.Quantile(0.99))),
			Exemplars: h.Exemplars(),
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON (map keys are
// marshalled in sorted order, so output is stable).
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z0-9_:]: every other rune becomes '_'. "detect.score.scaling/MSE.
// seconds" exposes as detect_score_scaling_MSE_seconds.
func promName(name string) string {
	out := []byte(name)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		case b >= '0' && b <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// escapeLabel escapes a label value for the Prometheus text exposition
// format: backslash, double-quote and newline, in that order, per the
// exposition-format spec.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes # HELP text: backslash and newline only (quotes are
// legal in help text, unlike in label values).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeExemplar appends an OpenMetrics exemplar to a bucket line:
//
//	name_bucket{le="0.005"} 42 # {trace_id="a1b2-7"} 0.0049 1712345678.123
func writeExemplar(w io.Writer, e Exemplar) error {
	_, err := fmt.Fprintf(w, " # {trace_id=\"%s\"} %g %.3f",
		escapeLabel(e.TraceID), e.ValueMs/1e3, float64(e.UnixNs)/1e9)
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count families with le labels in
// seconds. Buckets that pinned an exemplar carry it in OpenMetrics
// `# {trace_id="..."}` syntax; label values and HELP text are escaped per
// the exposition-format spec.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := struct {
		counters map[string]*Counter
		gauges   map[string]*Gauge
		hists    map[string]*Histogram
		help     map[string]string
	}{map[string]*Counter{}, map[string]*Gauge{}, map[string]*Histogram{}, map[string]string{}}
	r.mu.Lock()
	for k, v := range r.counters {
		snap.counters[k] = v
	}
	for k, v := range r.gauges {
		snap.gauges[k] = v
	}
	for k, v := range r.hists {
		snap.hists[k] = v
	}
	for k, v := range r.help {
		snap.help[k] = v
	}
	r.mu.Unlock()

	header := func(name, kind string) error {
		pn := promName(name)
		if help, ok := snap.help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, escapeHelp(help)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, kind)
		return err
	}
	for _, name := range sortedKeys(snap.counters) {
		if err := header(name, "counter"); err != nil {
			return err
		}
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, snap.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.gauges) {
		if err := header(name, "gauge"); err != nil {
			return err
		}
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, snap.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.hists) {
		h := snap.hists[name]
		if err := header(name, "histogram"); err != nil {
			return err
		}
		pn := promName(name)
		counts := h.bucketCounts()
		exemplars := map[string]Exemplar{}
		for _, e := range h.Exemplars() {
			exemplars[e.BucketLe] = e
		}
		var cum int64
		for i, n := range counts {
			cum += n
			le := bucketLe(i)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d", pn, escapeLabel(le), cum); err != nil {
				return err
			}
			if e, ok := exemplars[le]; ok {
				if err := writeExemplar(w, e); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n",
			pn, h.Sum().Seconds(), pn, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// publishOnce guards the process-global expvar name (expvar.Publish
// panics on duplicates).
var publishOnce sync.Once

// PublishExpvar publishes the default registry's snapshot under the
// expvar name "decamouflage.metrics", making it visible on /debug/vars of
// any debug server (including the one ServeDebug starts). Safe to call
// more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("decamouflage.metrics", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
