package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ---- poollife ----------------------------------------------------------

// checkPoolLife tracks values borrowed from sync.Pool.Get — and from the
// module's annotated borrow helpers — through each function as owned
// resources: every path must release a live token exactly once (Put, a call
// to a //declint:transfers function, or invoking an owned release func),
// may not release it twice, may not use it after a direct Put, and may not
// smuggle it into longer-lived storage or a return value unless the
// enclosing function is marked //declint:owns. The directives' claims are
// themselves verified at the callee: an owns function must reach a real
// pool acquire, a transfers function must reach a release or demonstrably
// store the value it takes custody of.
func checkPoolLife(pkgs []*Package, cfg Config, ix *Index) []Finding {
	var out []Finding

	decls := collectDecls(pkgs)

	for _, id := range ix.IDs() {
		fx := ix.Funcs[id]
		for i := range fx.DirectiveErrs {
			out = append(out, Finding{
				Check: "poollife", Pos: fx.DirectiveErrs[i].Pos, Msg: fx.DirectiveErrs[i].Kind,
			})
		}
		if len(fx.OwnsResults) > 0 && !reachesAcquire(ix, id) {
			out = append(out, Finding{
				Check: "poollife", Pos: fx.Pos,
				Msg: shortID(id) + " claims " + ownsMarker +
					" but no sync.Pool.Get is reachable from it; drop the directive or borrow from a pool",
			})
		}
		if (len(fx.TransfersParams) > 0 || fx.TransfersRecv) &&
			!transfersClaimHolds(ix, id, fx, decls) {
			out = append(out, Finding{
				Check: "poollife", Pos: fx.Pos,
				Msg: shortID(id) + " claims " + transfersMarker +
					" but neither releases nor stores the value it takes custody of; drop the directive",
			})
		}
	}

	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.Ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				owns := false
				if obj, k := pkg.Info.Defs[fd.Name].(*types.Func); k {
					if fx := ix.Funcs[funcIDOf(obj)]; fx != nil {
						owns = len(fx.OwnsResults) > 0
					}
				}
				sc := &poolScope{pkg: pkg, ix: ix, owns: owns, out: &out,
					scope: fd, tokens: map[types.Object]*tokenInfo{}}
				sc.run(fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						ls := &poolScope{pkg: pkg, ix: ix, owns: false, out: &out,
							scope: lit, tokens: map[types.Object]*tokenInfo{}}
						ls.run(lit.Body)
					}
					return true
				})
			}
		}
	}
	return out
}

// declEntry locates one function declaration for AST-level claim checks.
type declEntry struct {
	pkg *Package
	fd  *ast.FuncDecl
}

func collectDecls(pkgs []*Package) map[string]declEntry {
	decls := map[string]declEntry{}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Path, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			if f.Test {
				continue
			}
			for _, decl := range f.Ast.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, k := pkg.Info.Defs[fd.Name].(*types.Func); k {
					if id := funcIDOf(obj); id != "" {
						if _, dup := decls[id]; !dup {
							decls[id] = declEntry{pkg: pkg, fd: fd}
						}
					}
				}
			}
		}
	}
	return decls
}

func reachesAcquire(ix *Index, id string) bool {
	for _, rid := range ix.Reachable(id) {
		if r := ix.Funcs[rid]; r != nil && len(r.Acquires) > 0 {
			return true
		}
	}
	return false
}

// transfersClaimHolds verifies a //declint:transfers claim: the function
// must reach a sync.Pool.Put, or visibly store the claimed value (into a
// field, element, or another transfers function) so custody really moves.
func transfersClaimHolds(ix *Index, id string, fx *FuncEffects, decls map[string]declEntry) bool {
	for _, rid := range ix.Reachable(id) {
		if r := ix.Funcs[rid]; r != nil && len(r.Releases) > 0 {
			return true
		}
	}
	de, ok := decls[id]
	if !ok {
		return false
	}
	obj, _ := de.pkg.Info.Defs[de.fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	claimed := map[types.Object]bool{}
	for _, k := range fx.TransfersParams {
		if k < sig.Params().Len() {
			claimed[sig.Params().At(k)] = true
		}
	}
	if fx.TransfersRecv && sig.Recv() != nil {
		claimed[sig.Recv()] = true
	}
	if len(claimed) == 0 {
		return false
	}
	info := de.pkg.Info
	found := false
	ast.Inspect(de.fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				if !exprUsesAny(info, rhs, claimed) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					_ = l
					found = true
				case *ast.Ident:
					o := info.Uses[l]
					if o == nil {
						o = info.Defs[l]
					}
					if v, ok := o.(*types.Var); ok && !declaredWithin(v, de.fd) {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			fn := staticFuncRef(info, n.Fun)
			if fn == nil {
				return true
			}
			cf := ix.Funcs[funcIDOf(fn)]
			if cf == nil || len(cf.TransfersParams) == 0 {
				return true
			}
			for _, k := range cf.TransfersParams {
				if k < len(n.Args) && exprUsesAny(info, n.Args[k], claimed) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// ---- the per-scope abstract interpreter --------------------------------

type tokenState int

const (
	stNil tokenState = iota // definitely no borrowed value (zero value)
	stLive
	stMaybeLive    // live on some paths
	stLiveDeferred // a deferred release is pending
	stTransferred  // custody moved (transfers call, sanctioned escape)
	stReleased     // returned to the pool via a direct Put
)

func needsRelease(s tokenState) bool { return s == stLive || s == stMaybeLive }

func joinState(x, y tokenState) tokenState {
	if x == y {
		return x
	}
	if needsRelease(x) || needsRelease(y) {
		return stMaybeLive
	}
	for _, pref := range []tokenState{stLiveDeferred, stTransferred, stNil} {
		if x == pref || y == pref {
			return pref
		}
	}
	return stReleased
}

// tokenInfo is the per-token registry entry, shared across paths.
type tokenInfo struct {
	name          string
	acquire       token.Position
	usedAfterFree bool // report use-after-release once per token
}

// pstate is the abstract state of one execution path.
type pstate struct {
	st    map[types.Object]tokenState
	assoc map[types.Object][]types.Object // error var -> tokens of the same acquire
}

func newPstate() *pstate {
	return &pstate{st: map[types.Object]tokenState{}, assoc: map[types.Object][]types.Object{}}
}

func (s *pstate) clone() *pstate {
	c := newPstate()
	for k, v := range s.st {
		c.st[k] = v
	}
	for k, v := range s.assoc {
		c.assoc[k] = v
	}
	return c
}

func joinStates(a, b *pstate) *pstate {
	out := newPstate()
	for k, v := range a.st {
		out.st[k] = joinState(v, b.st[k])
	}
	for k, v := range b.st {
		if _, ok := a.st[k]; !ok {
			out.st[k] = joinState(stNil, v)
		}
	}
	for k, v := range a.assoc {
		out.assoc[k] = v
	}
	for k, v := range b.assoc {
		if _, ok := out.assoc[k]; !ok {
			out.assoc[k] = v
		}
	}
	return out
}

// branchJoin collects the states flowing into a break target (loop exits,
// switch/select case ends).
type branchJoin struct {
	states []*pstate
	loop   bool // continue binds here too
	conts  []*pstate
}

func (b *branchJoin) joined(fallthroughState *pstate, terminated bool) (*pstate, bool) {
	states := b.states
	if !terminated {
		states = append(states, fallthroughState)
	}
	if len(states) == 0 {
		return nil, true
	}
	out := states[0]
	for _, s := range states[1:] {
		out = joinStates(out, s)
	}
	return out, false
}

// poolScope interprets one function or closure body path-sensitively.
type poolScope struct {
	pkg    *Package
	ix     *Index
	scope  ast.Node // *ast.FuncDecl or *ast.FuncLit
	owns   bool     // scope is //declint:owns: escapes transfer custody
	out    *[]Finding
	tokens map[types.Object]*tokenInfo
	breaks []*branchJoin
}

func (a *poolScope) report(pos token.Position, msg string) {
	*a.out = append(*a.out, Finding{Check: "poollife", Pos: pos, Msg: msg})
}

func (a *poolScope) posOf(n ast.Node) token.Position { return a.pkg.Fset.Position(n.Pos()) }

func (a *poolScope) identObj(id *ast.Ident) types.Object {
	if o := a.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return a.pkg.Info.Defs[id]
}

func (a *poolScope) borrowedAt(obj types.Object) string {
	ti := a.tokens[obj]
	return fmt.Sprintf("%s (borrowed at %s:%d)", ti.name,
		filepath.Base(ti.acquire.Filename), ti.acquire.Line)
}

func (a *poolScope) run(body *ast.BlockStmt) {
	s := newPstate()
	if !a.stmts(body.List, s) {
		a.leakCheckAll(s, a.pkg.Fset.Position(body.Rbrace), "at end of function")
	}
}

// leakCheckAll reports every still-live token at an exit that returns
// nothing.
func (a *poolScope) leakCheckAll(s *pstate, pos token.Position, where string) {
	for obj, st := range s.st {
		if !needsRelease(st) {
			continue
		}
		verb := "is not released"
		if st == stMaybeLive {
			verb = "may not be released"
		}
		a.report(pos, "pooled value "+a.borrowedAt(obj)+" "+verb+" "+where+
			"; add the missing release or defer it")
	}
}

// ---- statement interpretation ------------------------------------------

func (a *poolScope) stmts(list []ast.Stmt, s *pstate) bool {
	for _, st := range list {
		if a.stmt(st, s) {
			return true
		}
	}
	return false
}

func (a *poolScope) stmt(stmt ast.Stmt, s *pstate) bool {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		return a.handleExprStmt(st, s)
	case *ast.AssignStmt:
		a.handleAssign(st, s)
	case *ast.DeclStmt:
		a.handleDecl(st, s)
	case *ast.DeferStmt:
		a.handleDefer(st, s)
	case *ast.ReturnStmt:
		a.handleReturn(st, s)
		return true
	case *ast.IfStmt:
		return a.handleIf(st, s)
	case *ast.BlockStmt:
		term := a.stmts(st.List, s)
		a.dropScoped(s, st, term)
		return term
	case *ast.ForStmt:
		a.handleFor(st, s)
	case *ast.RangeStmt:
		a.handleRange(st, s)
	case *ast.SwitchStmt:
		return a.handleSwitch(st, st.Init, st.Tag, caseClauses(st.Body), s)
	case *ast.TypeSwitchStmt:
		return a.handleSwitch(st, st.Init, nil, caseClauses(st.Body), s)
	case *ast.SelectStmt:
		return a.handleSelect(st, s)
	case *ast.LabeledStmt:
		return a.stmt(st.Stmt, s)
	case *ast.BranchStmt:
		return a.handleBranch(st, s)
	case *ast.GoStmt:
		a.handleGo(st, s)
	case *ast.SendStmt:
		a.scanExpr(st.Chan, s)
		a.scanExpr(st.Value, s)
	case *ast.IncDecStmt:
		a.scanExpr(st.X, s)
	}
	return false
}

func caseClauses(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(stmt ast.Stmt) bool {
	var body *ast.BlockStmt
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		body = st.Body
	case *ast.TypeSwitchStmt:
		body = st.Body
	default:
		return false
	}
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (a *poolScope) handleBranch(st *ast.BranchStmt, s *pstate) bool {
	if len(a.breaks) == 0 {
		return true // goto, or a branch outside any tracked construct
	}
	top := a.breaks[len(a.breaks)-1]
	switch st.Tok {
	case token.BREAK:
		if st.Label == nil {
			top.states = append(top.states, s.clone())
		}
	case token.CONTINUE:
		if st.Label == nil {
			for i := len(a.breaks) - 1; i >= 0; i-- {
				if a.breaks[i].loop {
					a.breaks[i].conts = append(a.breaks[i].conts, s.clone())
					break
				}
			}
		}
	}
	return true
}

func (a *poolScope) handleIf(st *ast.IfStmt, s *pstate) bool {
	if st.Init != nil && a.stmt(st.Init, s) {
		return true
	}
	a.scanExpr(st.Cond, s)
	sThen := s.clone()
	sElse := s.clone()
	a.refine(st.Cond, sThen, sElse)
	termThen := a.stmts(st.Body.List, sThen)
	a.dropScoped(sThen, st.Body, termThen)
	termElse := false
	if st.Else != nil {
		termElse = a.stmt(st.Else, sElse)
	}
	switch {
	case termThen && termElse:
		return true
	case termThen:
		*s = *sElse
	case termElse:
		*s = *sThen
	default:
		*s = *joinStates(sThen, sElse)
	}
	a.dropScoped(s, st, false)
	return false
}

func (a *poolScope) handleFor(st *ast.ForStmt, s *pstate) {
	if st.Init != nil {
		a.stmt(st.Init, s)
	}
	if st.Cond != nil {
		a.scanExpr(st.Cond, s)
	}
	pre := s.clone()
	body := s.clone()
	bj := &branchJoin{loop: true}
	a.breaks = append(a.breaks, bj)
	term := a.stmts(st.Body.List, body)
	a.breaks = a.breaks[:len(a.breaks)-1]
	for _, cs := range bj.conts {
		body = joinStates(body, cs)
	}
	if st.Post != nil && !term {
		a.stmt(st.Post, body)
	}
	a.dropScoped(body, st.Body, term)
	a.loopReleaseCheck(st, pre, body)
	merged, _ := bj.joined(joinStates(pre, body), false)
	*s = *merged
	a.dropScoped(s, st, false)
}

func (a *poolScope) handleRange(st *ast.RangeStmt, s *pstate) {
	a.scanExpr(st.X, s)
	pre := s.clone()
	body := s.clone()
	bj := &branchJoin{loop: true}
	a.breaks = append(a.breaks, bj)
	term := a.stmts(st.Body.List, body)
	a.breaks = a.breaks[:len(a.breaks)-1]
	for _, cs := range bj.conts {
		body = joinStates(body, cs)
	}
	a.dropScoped(body, st.Body, term)
	a.loopReleaseCheck(st, pre, body)
	merged, _ := bj.joined(joinStates(pre, body), false)
	*s = *merged
	a.dropScoped(s, st, false)
}

// loopReleaseCheck flags a token that was live before the loop and released
// inside its body: a second iteration would double-free it.
func (a *poolScope) loopReleaseCheck(loop ast.Node, pre, body *pstate) {
	for obj, stPre := range pre.st {
		if !needsRelease(stPre) {
			continue
		}
		if bs := body.st[obj]; bs == stReleased || bs == stTransferred {
			a.report(a.posOf(loop), "pooled value "+a.borrowedAt(obj)+
				" is released inside a loop body; a second iteration double-frees it")
			body.st[obj] = stReleased
		}
	}
}

func (a *poolScope) handleSwitch(st ast.Stmt, init ast.Stmt, tag ast.Expr, cases [][]ast.Stmt, s *pstate) bool {
	if init != nil && a.stmt(init, s) {
		return true
	}
	if tag != nil {
		a.scanExpr(tag, s)
	}
	base := s.clone()
	bj := &branchJoin{}
	a.breaks = append(a.breaks, bj)
	for _, body := range cases {
		cs := base.clone()
		if !a.stmts(body, cs) {
			bj.states = append(bj.states, cs)
		}
	}
	a.breaks = a.breaks[:len(a.breaks)-1]
	if !hasDefaultClause(st) || len(cases) == 0 {
		bj.states = append(bj.states, base)
	}
	merged, allTerm := bj.joined(nil, true)
	if allTerm {
		return true
	}
	*s = *merged
	a.dropScoped(s, st, false)
	return false
}

func (a *poolScope) handleSelect(st *ast.SelectStmt, s *pstate) bool {
	bj := &branchJoin{}
	a.breaks = append(a.breaks, bj)
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		cs := s.clone()
		if cc.Comm != nil {
			a.stmt(cc.Comm, cs)
		}
		if !a.stmts(cc.Body, cs) {
			bj.states = append(bj.states, cs)
		}
	}
	a.breaks = a.breaks[:len(a.breaks)-1]
	merged, allTerm := bj.joined(nil, true)
	if allTerm {
		return true
	}
	*s = *merged
	a.dropScoped(s, st, false)
	return false
}

// dropScoped leak-checks and forgets tokens whose variable is scoped to
// node once control leaves it.
func (a *poolScope) dropScoped(s *pstate, node ast.Node, terminated bool) {
	for obj, st := range s.st {
		if !declaredWithin(obj, node) {
			continue
		}
		if !terminated && needsRelease(st) {
			ti := a.tokens[obj]
			a.report(ti.acquire, "pooled value "+a.borrowedAt(obj)+
				" goes out of scope without being released")
		}
		delete(s.st, obj)
	}
}

// refine narrows branch states from `x != nil` / `x == nil` conditions on
// tokens and on error variables associated with an owning acquire.
func (a *poolScope) refine(cond ast.Expr, sThen, sElse *pstate) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return
	}
	var x ast.Expr
	switch {
	case a.isNil(bin.Y):
		x = bin.X
	case a.isNil(bin.X):
		x = bin.Y
	default:
		return
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return
	}
	obj := a.identObj(id)
	if obj == nil {
		return
	}
	nilBranch, liveBranch := sElse, sThen // x != nil
	if bin.Op == token.EQL {
		nilBranch, liveBranch = sThen, sElse
	}
	if a.tokens[obj] != nil {
		if needsRelease(nilBranch.st[obj]) {
			nilBranch.st[obj] = stNil
		}
		if liveBranch.st[obj] == stMaybeLive {
			liveBranch.st[obj] = stLive
		}
		return
	}
	// obj is an error variable: the roles invert — on the err != nil branch
	// (liveBranch for a token) the acquire failed and its owned results
	// hold nothing; on err == nil they are definitely live.
	for _, tok := range sThen.assoc[obj] {
		if needsRelease(liveBranch.st[tok]) {
			liveBranch.st[tok] = stNil
		}
		if needsRelease(nilBranch.st[tok]) {
			nilBranch.st[tok] = stLive
		}
	}
}

func (a *poolScope) isNil(e ast.Expr) bool {
	tv, ok := a.pkg.Info.Types[e]
	return ok && tv.IsNil()
}

// ---- expression-level events -------------------------------------------

// relEvent is one release recognized inside an expression tree.
type relEvent struct {
	obj      types.Object
	transfer bool     // custody moves (transfers directive) vs direct Put
	node     ast.Node // the call
	consumed []ast.Node
}

// classifyReleases recognizes every release form inside a call: a direct
// sync.Pool.Put, invoking a token that is itself a release func, calling a
// //declint:transfers function or method with a token (or a transfers-
// receiver method value) in a custody position.
func (a *poolScope) classifyReleases(call *ast.CallExpr, s *pstate) []relEvent {
	info := a.pkg.Info
	var out []relEvent
	tokenIdent := func(e ast.Expr) (*ast.Ident, types.Object) {
		x := ast.Unparen(e)
		if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.AND {
			x = ast.Unparen(u.X)
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return nil, nil
		}
		obj := a.identObj(id)
		if obj == nil || a.tokens[obj] == nil {
			return nil, nil
		}
		return id, obj
	}

	if syncPoolMethod(info, call) == "Put" && len(call.Args) == 1 {
		if id, obj := tokenIdent(call.Args[0]); obj != nil {
			out = append(out, relEvent{obj: obj, node: call, consumed: []ast.Node{id}})
		}
		return out
	}
	if id, obj := tokenIdent(call.Fun); obj != nil {
		// putDown() — invoking an owned release func releases its buffer.
		return append(out, relEvent{obj: obj, node: call, consumed: []ast.Node{id}})
	}

	fn := staticFuncRef(info, call.Fun)
	if fn == nil {
		return out
	}
	cf := a.ix.Funcs[funcIDOf(fn)]
	if cf == nil {
		return out
	}
	if cf.TransfersRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, obj := tokenIdent(sel.X); obj != nil {
				out = append(out, relEvent{obj: obj, transfer: true, node: call, consumed: []ast.Node{id}})
			}
		}
	}
	for _, k := range cf.TransfersParams {
		if k >= len(call.Args) {
			continue
		}
		arg := ast.Unparen(call.Args[k])
		if id, obj := tokenIdent(arg); obj != nil {
			out = append(out, relEvent{obj: obj, transfer: true, node: call, consumed: []ast.Node{id}})
			continue
		}
		if sel, ok := arg.(*ast.SelectorExpr); ok {
			// in.deferRelease(ref.Release): a transfers-receiver method
			// value hands the receiver's custody to the callee.
			if mfn := staticFuncRef(info, sel); mfn != nil {
				if mf := a.ix.Funcs[funcIDOf(mfn)]; mf != nil && mf.TransfersRecv {
					if id, obj := tokenIdent(sel.X); obj != nil {
						out = append(out, relEvent{obj: obj, transfer: true, node: call, consumed: []ast.Node{id}})
					}
				}
			}
			continue
		}
		if lit, ok := arg.(*ast.FuncLit); ok {
			// A closure handed to a transfers parameter carries custody of
			// every live token it releases in its body.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if inner, ok := n.(*ast.CallExpr); ok {
					for _, ev := range a.classifyReleases(inner, s) {
						ev.transfer = true
						ev.node = call
						out = append(out, ev)
					}
				}
				return true
			})
		}
	}
	return out
}

// applyRelease performs a release transition, reporting double-release
// hazards.
func (a *poolScope) applyRelease(s *pstate, ev relEvent, deferred bool) {
	pos := a.posOf(ev.node)
	switch s.st[ev.obj] {
	case stLive, stMaybeLive:
		switch {
		case ev.transfer:
			s.st[ev.obj] = stTransferred
		case deferred:
			s.st[ev.obj] = stLiveDeferred
		default:
			s.st[ev.obj] = stReleased
		}
	case stLiveDeferred:
		a.report(pos, "pooled value "+a.borrowedAt(ev.obj)+
			" has a deferred release pending; this release double-frees it")
	case stReleased:
		a.report(pos, "pooled value "+a.borrowedAt(ev.obj)+" released more than once")
	case stTransferred:
		a.report(pos, "pooled value "+a.borrowedAt(ev.obj)+
			" was already transferred away; this release double-frees it")
	case stNil:
		// Releasing a definitely-nil token is a no-op (nil-guarded paths).
	}
}

// scanExpr walks one expression: applies releases, flags uses of released
// tokens, and checks closures for references to released tokens. Escapes
// are handled by the statement-level callers that know the storage target.
func (a *poolScope) scanExpr(e ast.Expr, s *pstate) {
	if e == nil {
		return
	}
	skip := map[ast.Node]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.scanUseAfterRelease(n.Body, s)
			return false
		case *ast.CallExpr:
			for _, ev := range a.classifyReleases(n, s) {
				for _, c := range ev.consumed {
					skip[c] = true
				}
				a.applyRelease(s, ev, false)
			}
		case *ast.Ident:
			if skip[n] {
				return true
			}
			a.flagUseIfReleased(n, s)
		}
		return true
	})
}

func (a *poolScope) flagUseIfReleased(id *ast.Ident, s *pstate) {
	obj := a.identObj(id)
	if obj == nil {
		return
	}
	ti := a.tokens[obj]
	if ti == nil || ti.usedAfterFree || s.st[obj] != stReleased {
		return
	}
	ti.usedAfterFree = true
	a.report(a.posOf(id), "use of pooled value "+a.borrowedAt(obj)+" after it was released")
}

func (a *poolScope) scanUseAfterRelease(n ast.Node, s *pstate) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			a.flagUseIfReleased(id, s)
		}
		return true
	})
}

// storedTokens collects live tokens referenced in e outside call-argument
// position: direct stores (the ident itself, composite literals, &x) and
// closure captures — the forms that can outlive the frame. Call arguments
// are borrows and excluded — except append's, which land in the slice and
// outlive the call — and everything inside a closure counts, since a
// stored closure retains what it captures.
func (a *poolScope) storedTokens(e ast.Expr, s *pstate) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	add := func(id *ast.Ident) {
		obj := a.identObj(id)
		if obj == nil || seen[obj] || a.tokens[obj] == nil || !needsRelease(s.st[obj]) {
			return
		}
		seen[obj] = true
		out = append(out, obj)
	}
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, true)
				return false
			case *ast.CallExpr:
				if inLit {
					return true
				}
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
					if b, ok := a.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						for _, arg := range m.Args[1:] {
							walk(arg, inLit)
						}
					}
				}
				return false
			case *ast.Ident:
				add(m)
			}
			return true
		})
	}
	walk(e, false)
	return out
}

// escapeEvent handles a token stored beyond the frame: sanctioned custody
// transfer in an owns function, a finding otherwise.
func (a *poolScope) escapeEvent(s *pstate, obj types.Object, n ast.Node, how string) {
	s.st[obj] = stTransferred // either sanctioned, or reported once below
	if a.owns {
		return
	}
	a.report(a.posOf(n), "pooled value "+a.borrowedAt(obj)+" "+how+
		"; mark the enclosing function "+ownsMarker+" to transfer custody, or release it locally")
}

// ---- acquires -----------------------------------------------------------

// acquireInfo describes what a call hands to its caller: which result
// indices carry pool custody, plus the error result to associate for
// nil-refinement. label names the callee in messages.
type acquireInfo struct {
	owned  map[int]bool
	errIdx int
	label  string
}

func (a *poolScope) acquireOf(call *ast.CallExpr) *acquireInfo {
	info := a.pkg.Info
	if syncPoolMethod(info, call) == "Get" {
		return &acquireInfo{owned: map[int]bool{0: true}, errIdx: -1, label: "sync.Pool.Get"}
	}
	fn := staticFuncRef(info, call.Fun)
	if fn == nil {
		return nil
	}
	cf := a.ix.Funcs[funcIDOf(fn)]
	if cf == nil || len(cf.OwnsResults) == 0 {
		return nil
	}
	ai := &acquireInfo{owned: map[int]bool{}, errIdx: -1, label: shortID(funcIDOf(fn))}
	for _, k := range cf.OwnsResults {
		ai.owned[k] = true
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for j := 0; j < sig.Results().Len(); j++ {
			if types.Identical(sig.Results().At(j).Type(), types.Universe.Lookup("error").Type()) {
				ai.errIdx = j
				break
			}
		}
	}
	return ai
}

// unwrapAcquire peels parens and type assertions off an acquiring call:
// pool.Get().(*[]float64) acquires like pool.Get().
func (a *poolScope) unwrapAcquire(e ast.Expr) (*ast.CallExpr, *acquireInfo) {
	x := ast.Unparen(e)
	if ta, ok := x.(*ast.TypeAssertExpr); ok {
		x = ast.Unparen(ta.X)
	}
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	ai := a.acquireOf(call)
	if ai == nil {
		return nil, nil
	}
	return call, ai
}

func (a *poolScope) bind(s *pstate, obj types.Object, n ast.Node) {
	if st, ok := s.st[obj]; ok && needsRelease(st) {
		a.report(a.posOf(n), "pooled value "+a.borrowedAt(obj)+
			" is overwritten while still live; release it first")
	}
	ti := a.tokens[obj]
	if ti == nil {
		ti = &tokenInfo{name: obj.Name()}
		a.tokens[obj] = ti
	}
	ti.acquire = a.posOf(n)
	ti.usedAfterFree = false
	s.st[obj] = stLive
}

// bindAcquire distributes an acquiring call's owned results over the
// assignment targets, reporting discarded custody and recording the error
// association for branch refinement.
func (a *poolScope) bindAcquire(s *pstate, call *ast.CallExpr, ai *acquireInfo, lhs []ast.Expr) {
	var toks []types.Object
	for k := range ai.owned {
		if k >= len(lhs) {
			if len(lhs) == 1 {
				continue // single-target binding of a multi-result call is impossible in Go
			}
			continue
		}
		id, ok := ast.Unparen(lhs[k]).(*ast.Ident)
		if !ok || id.Name == "_" {
			a.report(a.posOf(call), "owned result of "+ai.label+
				" is discarded; the pooled value can never be released")
			continue
		}
		obj := a.identObj(id)
		if obj == nil {
			continue
		}
		a.bind(s, obj, call)
		toks = append(toks, obj)
	}
	if len(toks) == 0 || ai.errIdx < 0 || ai.errIdx >= len(lhs) {
		return
	}
	if id, ok := ast.Unparen(lhs[ai.errIdx]).(*ast.Ident); ok && id.Name != "_" {
		if errObj := a.identObj(id); errObj != nil {
			s.assoc[errObj] = toks
		}
	}
}

// ---- statement handlers -------------------------------------------------

func (a *poolScope) handleExprStmt(st *ast.ExprStmt, s *pstate) bool {
	if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := a.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				for _, arg := range call.Args {
					a.scanExpr(arg, s)
				}
				return true
			}
		}
		if ai := a.acquireOf(call); ai != nil {
			a.report(a.posOf(call), "owned result of "+ai.label+
				" is discarded; the pooled value can never be released")
		}
	}
	a.scanExpr(st.X, s)
	return false
}

func (a *poolScope) handleAssign(st *ast.AssignStmt, s *pstate) {
	for _, rhs := range st.Rhs {
		a.scanExpr(rhs, s)
	}
	// Escapes: a live token stored through a selector/index/deref target, or
	// into a variable declared outside this scope, outlives the frame.
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		switch {
		case len(st.Rhs) == len(st.Lhs):
			rhs = st.Rhs[i]
		case len(st.Rhs) == 1:
			rhs = st.Rhs[0]
		default:
			continue
		}
		stored := a.storedTokens(rhs, s)
		if len(stored) == 0 {
			continue
		}
		if a.escapeTarget(lhs) {
			for _, obj := range stored {
				a.escapeEvent(s, obj, st, "is stored into longer-lived state")
			}
		}
	}
	// Bindings: distribute acquiring calls over their targets.
	if len(st.Rhs) == 1 {
		if call, ai := a.unwrapAcquire(st.Rhs[0]); ai != nil {
			a.bindAcquire(s, call, ai, st.Lhs)
			return
		}
	}
	if len(st.Rhs) == len(st.Lhs) {
		for i := range st.Rhs {
			if call, ai := a.unwrapAcquire(st.Rhs[i]); ai != nil {
				a.bindAcquire(s, call, ai, st.Lhs[i:i+1])
				continue
			}
			a.nonAcquireTarget(s, st, st.Lhs[i], st.Rhs[i])
		}
		return
	}
	for _, lhs := range st.Lhs {
		a.nonAcquireTarget(s, st, lhs, nil)
	}
}

// nonAcquireTarget handles assignment to an existing token variable from a
// non-acquiring source: the old buffer is lost if still live.
func (a *poolScope) nonAcquireTarget(s *pstate, st *ast.AssignStmt, lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := a.identObj(id)
	if obj == nil {
		return
	}
	if _, isAssoc := s.assoc[obj]; isAssoc && st.Tok == token.ASSIGN {
		delete(s.assoc, obj) // error var reassigned: old association is stale
	}
	if a.tokens[obj] == nil {
		return
	}
	cur, tracked := s.st[obj]
	if !tracked {
		return
	}
	if needsRelease(cur) {
		a.report(a.posOf(st), "pooled value "+a.borrowedAt(obj)+
			" is overwritten while still live; release it first")
	}
	if rhs != nil && a.isNil(rhs) {
		s.st[obj] = stNil
		return
	}
	s.st[obj] = stNil
}

// escapeTarget reports whether an assignment target stores beyond the
// current frame: field/element/pointer targets, or variables declared
// outside this scope (captured or package-level).
func (a *poolScope) escapeTarget(lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if l.Name == "_" {
			return false
		}
		obj := a.identObj(l)
		if obj == nil {
			return false
		}
		return !declaredWithin(obj, a.scope)
	}
	return false
}

func (a *poolScope) handleDecl(st *ast.DeclStmt, s *pstate) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			a.scanExpr(v, s)
		}
		if len(vs.Values) == 1 {
			if call, ai := a.unwrapAcquire(vs.Values[0]); ai != nil {
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				a.bindAcquire(s, call, ai, lhs)
			}
			continue
		}
		for i, v := range vs.Values {
			if call, ai := a.unwrapAcquire(v); ai != nil && i < len(vs.Names) {
				a.bindAcquire(s, call, ai, []ast.Expr{vs.Names[i]})
			}
		}
	}
}

func (a *poolScope) handleDefer(st *ast.DeferStmt, s *pstate) {
	call := st.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// defer func() { ... }(): releases in the body run at exit.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				for _, ev := range a.classifyReleases(inner, s) {
					a.applyRelease(s, ev, true)
				}
			}
			return true
		})
		for _, arg := range call.Args {
			a.scanExpr(arg, s)
		}
		return
	}
	evs := a.classifyReleases(call, s)
	for _, ev := range evs {
		a.applyRelease(s, ev, true)
	}
	if len(evs) == 0 {
		a.scanExpr(call, s)
	}
}

func (a *poolScope) handleReturn(st *ast.ReturnStmt, s *pstate) {
	refs := map[types.Object]bool{}
	for _, res := range st.Results {
		a.scanExpr(res, s)
		for _, obj := range a.storedTokens(res, s) {
			refs[obj] = true
		}
	}
	pos := a.posOf(st)
	for obj, state := range s.st {
		if !needsRelease(state) {
			continue
		}
		if refs[obj] {
			if a.owns {
				s.st[obj] = stTransferred
				continue
			}
			a.report(pos, "pooled value "+a.borrowedAt(obj)+
				" is returned without an ownership annotation; mark the function "+
				ownsMarker+" so callers release it")
			continue
		}
		verb := "is not released"
		if state == stMaybeLive {
			verb = "may not be released"
		}
		a.report(pos, "pooled value "+a.borrowedAt(obj)+" "+verb+
			" on this return path; add the missing release or defer it")
	}
}

func (a *poolScope) handleGo(st *ast.GoStmt, s *pstate) {
	for obj, state := range s.st {
		if !needsRelease(state) {
			continue
		}
		if referencesObj(a.pkg.Info, st.Call, obj) {
			a.report(a.posOf(st), "pooled value "+a.borrowedAt(obj)+
				" is captured by a goroutine whose lifetime the checker cannot see; "+
				"release it on the spawning side or restructure")
			s.st[obj] = stTransferred // reported once; don't re-flag as a leak
		}
	}
}

// referencesObj reports whether any identifier under n resolves to obj.
func referencesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
