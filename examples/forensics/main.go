// Forensics: beyond a binary verdict, the steganalysis spectrum reveals
// WHAT the attacker was aiming at. The attack comb's spectral replicas are
// spaced by the embedded target's geometry, so a flagged image can be
// traced to the model-input size — and hence the deployed CNN family —
// the adversary targeted (the paper's Table 1 becomes a suspect lineup).
//
// Run with:
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"log"

	"decamouflage"
	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
	"decamouflage/internal/steg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("forensics: ")

	// The attacker prepares camouflage images for a LeNet-style 32x32
	// pipeline; the auditor does not know this.
	const srcW, srcH = 128, 128
	cases := []struct {
		name       string
		dstW, dstH int
	}{
		{"LeNet-5-sized pipeline (32x32)", 32, 32},
		{"smaller embedded target (16x16)", 16, 16},
	}
	covers, err := dataset.NewGenerator(dataset.Config{
		Corpus: dataset.CaltechLike, W: srcW, H: srcH, C: 3, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}

	stegDet, err := decamouflage.NewSteganalysisDetector()
	if err != nil {
		log.Fatal(err)
	}

	for ci, tc := range cases {
		targets, err := dataset.NewGenerator(dataset.Config{
			Corpus: dataset.CaltechLike, W: tc.dstW, H: tc.dstH, C: 3, Seed: int64(80 + ci),
		})
		if err != nil {
			log.Fatal(err)
		}
		scaler, err := decamouflage.NewScaler(srcW, srcH, tc.dstW, tc.dstH, decamouflage.Bilinear)
		if err != nil {
			log.Fatal(err)
		}
		res, err := decamouflage.CraftAttack(covers.Image(ci), targets.Image(ci), scaler, 2)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("case: %s\n", tc.name)
		v, err := stegDet.Detect(res.Attack)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  steganalysis verdict: attack=%v (CSP=%.0f)\n", v.Attack, v.Score)

		// The sensitive gate (0.70) also measures strong-ratio attacks
		// whose dim replicas the stricter detection default misses.
		w, h, ok := steg.EstimateTargetSize(res.Attack, steg.Options{BinarizeThreshold: 0.70})
		if !ok {
			fmt.Println("  no measurable spectral replicas; cannot estimate target size")
			continue
		}
		fmt.Printf("  estimated attacker target geometry: %dx%d (true %dx%d)\n",
			w, h, tc.dstW, tc.dstH)
		matches := detect.MatchModels(w, h, 3)
		if len(matches) == 0 {
			fmt.Println("  no known CNN family uses that input size")
		}
		for _, m := range matches {
			fmt.Printf("  likely targeted model family: %s (%dx%d input)\n", m.Model, m.W, m.H)
		}
	}

	// Benign control: forensics are follow-up on FLAGGED images. A benign
	// image with CSP = 1 never reaches the estimator, so periodic benign
	// texture cannot create a false trail.
	benign := covers.Image(9)
	v, err := stegDet.Detect(benign)
	if err != nil {
		log.Fatal(err)
	}
	if v.Attack {
		fmt.Println("benign control: unexpectedly flagged")
	} else {
		fmt.Println("benign control: CSP=1, not flagged — forensics never consulted")
	}
}
