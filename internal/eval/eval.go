// Package eval provides the experiment harness Decamouflage's evaluation is
// built on: labelled benign/attack corpora, confusion-matrix statistics
// (accuracy, precision, recall, FAR, FRR — the paper's five headline
// metrics), detector/ensemble evaluation, and per-image runtime
// measurement.
package eval

import (
	"context"
	"errors"
	"fmt"
	"time"

	"decamouflage/internal/attack"
	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
	"decamouflage/internal/scaling"
	"decamouflage/internal/stats"
)

// ConfusionStats counts classification outcomes. Attack is the positive
// class, matching the paper's definitions: FAR is the fraction of attacks
// accepted as benign, FRR the fraction of benign rejected as attacks.
type ConfusionStats struct {
	TP, TN, FP, FN int
}

// Add merges another confusion count into this one.
func (c *ConfusionStats) Add(o ConfusionStats) {
	c.TP += o.TP
	c.TN += o.TN
	c.FP += o.FP
	c.FN += o.FN
}

// Record tallies one labelled outcome.
func (c *ConfusionStats) Record(isAttack, flagged bool) {
	switch {
	case isAttack && flagged:
		c.TP++
	case isAttack && !flagged:
		c.FN++
	case !isAttack && flagged:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of recorded outcomes.
func (c ConfusionStats) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy is the fraction of correct classifications.
func (c ConfusionStats) Accuracy() float64 {
	if t := c.Total(); t > 0 {
		return float64(c.TP+c.TN) / float64(t)
	}
	return 0
}

// Precision is TP/(TP+FP) — of flagged images, how many were attacks.
func (c ConfusionStats) Precision() float64 {
	if d := c.TP + c.FP; d > 0 {
		return float64(c.TP) / float64(d)
	}
	return 0
}

// Recall is TP/(TP+FN) — of attacks, how many were flagged.
func (c ConfusionStats) Recall() float64 {
	if d := c.TP + c.FN; d > 0 {
		return float64(c.TP) / float64(d)
	}
	return 0
}

// FAR is FN/(TP+FN): attacks accepted as benign.
func (c ConfusionStats) FAR() float64 {
	if d := c.TP + c.FN; d > 0 {
		return float64(c.FN) / float64(d)
	}
	return 0
}

// FRR is FP/(TN+FP): benign rejected as attacks.
func (c ConfusionStats) FRR() float64 {
	if d := c.TN + c.FP; d > 0 {
		return float64(c.FP) / float64(d)
	}
	return 0
}

// String renders the five headline percentages.
func (c ConfusionStats) String() string {
	return fmt.Sprintf("acc=%.1f%% prec=%.1f%% rec=%.1f%% FAR=%.1f%% FRR=%.1f%%",
		c.Accuracy()*100, c.Precision()*100, c.Recall()*100, c.FAR()*100, c.FRR()*100)
}

// Corpus is a labelled experiment dataset: benign originals, their attack
// counterparts, and the targets the attacks embed.
type Corpus struct {
	Benign  []*imgcore.Image
	Attacks []*imgcore.Image
	Targets []*imgcore.Image
	// Scaler is the scaling function the attacks were crafted against.
	Scaler *scaling.Scaler
}

// CorpusSpec declares how to synthesize a Corpus.
type CorpusSpec struct {
	// Corpus picks the generator family (calibration vs evaluation).
	Corpus dataset.Corpus
	// N is the number of benign (and attack) images.
	N int
	// SrcW/SrcH and DstW/DstH define the scaling geometry.
	SrcW, SrcH, DstW, DstH int
	// C is the channel count (default 3).
	C int
	// Seed drives the deterministic generators.
	Seed int64
	// Algorithm is the scaling algorithm under attack (default Bilinear).
	Algorithm scaling.Algorithm
	// AttackAlgorithm, when set, crafts attacks against a DIFFERENT
	// algorithm than the detector's (the X1 cross-kernel experiment).
	AttackAlgorithm scaling.Algorithm
	// Eps is the attack's L∞ budget (default 2).
	Eps float64
}

func (s CorpusSpec) withDefaults() CorpusSpec {
	if s.C == 0 {
		s.C = 3
	}
	if s.Algorithm == 0 {
		s.Algorithm = scaling.Bilinear
	}
	if s.AttackAlgorithm == 0 {
		s.AttackAlgorithm = s.Algorithm
	}
	//declint:ignore floateq zero is the unset-option sentinel, set only by literal omission
	if s.Eps == 0 {
		s.Eps = 2
	}
	return s
}

func (s CorpusSpec) validate() error {
	if s.N <= 0 {
		return fmt.Errorf("eval: corpus size %d must be positive", s.N)
	}
	if s.SrcW <= 0 || s.SrcH <= 0 || s.DstW <= 0 || s.DstH <= 0 {
		return fmt.Errorf("eval: invalid geometry %dx%d -> %dx%d", s.SrcW, s.SrcH, s.DstW, s.DstH)
	}
	return nil
}

// BuildCorpus synthesizes benign images and crafts one attack per benign
// image, in parallel across CPUs. The returned corpus's Scaler uses
// spec.Algorithm (the defender's view), while attacks are crafted against
// spec.AttackAlgorithm.
func BuildCorpus(ctx context.Context, spec CorpusSpec) (*Corpus, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	gen, err := dataset.NewGenerator(dataset.Config{
		Corpus: spec.Corpus, W: spec.SrcW, H: spec.SrcH, C: spec.C, Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	tgen, err := dataset.NewGenerator(dataset.Config{
		Corpus: spec.Corpus, W: spec.DstW, H: spec.DstH, C: spec.C, Seed: spec.Seed + 7919,
	})
	if err != nil {
		return nil, err
	}
	defScaler, err := scaling.NewScaler(spec.SrcW, spec.SrcH, spec.DstW, spec.DstH,
		scaling.Options{Algorithm: spec.Algorithm})
	if err != nil {
		return nil, err
	}
	atkScaler, err := scaling.NewScaler(spec.SrcW, spec.SrcH, spec.DstW, spec.DstH,
		scaling.Options{Algorithm: spec.AttackAlgorithm})
	if err != nil {
		return nil, err
	}

	c := &Corpus{
		Benign:  make([]*imgcore.Image, spec.N),
		Attacks: make([]*imgcore.Image, spec.N),
		Targets: make([]*imgcore.Image, spec.N),
		Scaler:  defScaler,
	}
	err = forEachParallel(ctx, spec.N, func(i int) error {
		benign := gen.Image(i)
		target := tgen.Image(i)
		res, err := attack.Craft(benign, target, attack.Config{Scaler: atkScaler, Eps: spec.Eps})
		if err != nil {
			return fmt.Errorf("eval: crafting attack %d: %w", i, err)
		}
		c.Benign[i] = benign
		c.Targets[i] = target
		c.Attacks[i] = res.Attack
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// forEachParallel fans fn(i) for i in [0,n) through the shared parallel
// substrate, stopping on the first error (ties broken toward the lowest
// index, so the returned error is deterministic) or context cancellation.
func forEachParallel(ctx context.Context, n int, fn func(i int) error) error {
	return parallel.For(ctx, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// ScorePair evaluates a scorer over the corpus's benign and attack sets in
// parallel, returning the two score vectors.
func ScorePair(ctx context.Context, s detect.Scorer, c *Corpus) (benign, attacks []float64, err error) {
	if s == nil {
		return nil, nil, errors.New("eval: nil scorer")
	}
	benign = make([]float64, len(c.Benign))
	attacks = make([]float64, len(c.Attacks))
	err = forEachParallel(ctx, len(c.Benign)+len(c.Attacks), func(i int) error {
		if i < len(c.Benign) {
			v, err := s.Score(c.Benign[i])
			if err != nil {
				return fmt.Errorf("eval: benign %d: %w", i, err)
			}
			benign[i] = v
			return nil
		}
		j := i - len(c.Benign)
		v, err := s.Score(c.Attacks[j])
		if err != nil {
			return fmt.Errorf("eval: attack %d: %w", j, err)
		}
		attacks[j] = v
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return benign, attacks, nil
}

// EvaluateThreshold classifies precomputed score vectors under a threshold.
func EvaluateThreshold(th detect.Threshold, benign, attacks []float64) ConfusionStats {
	var c ConfusionStats
	for _, s := range benign {
		c.Record(false, th.Classify(s))
	}
	for _, s := range attacks {
		c.Record(true, th.Classify(s))
	}
	return c
}

// EvaluateDetector runs a detector over the whole corpus.
func EvaluateDetector(ctx context.Context, d *detect.Detector, c *Corpus) (ConfusionStats, error) {
	if d == nil {
		return ConfusionStats{}, errors.New("eval: nil detector")
	}
	verdictB := make([]bool, len(c.Benign))
	verdictA := make([]bool, len(c.Attacks))
	err := forEachParallel(ctx, len(c.Benign)+len(c.Attacks), func(i int) error {
		if i < len(c.Benign) {
			v, err := d.Detect(c.Benign[i])
			if err != nil {
				return err
			}
			verdictB[i] = v.Attack
			return nil
		}
		j := i - len(c.Benign)
		v, err := d.Detect(c.Attacks[j])
		if err != nil {
			return err
		}
		verdictA[j] = v.Attack
		return nil
	})
	if err != nil {
		return ConfusionStats{}, err
	}
	var cs ConfusionStats
	for _, f := range verdictB {
		cs.Record(false, f)
	}
	for _, f := range verdictA {
		cs.Record(true, f)
	}
	return cs, nil
}

// EvaluateEnsemble runs an ensemble over the whole corpus.
func EvaluateEnsemble(ctx context.Context, e *detect.Ensemble, c *Corpus) (ConfusionStats, error) {
	if e == nil {
		return ConfusionStats{}, errors.New("eval: nil ensemble")
	}
	verdictB := make([]bool, len(c.Benign))
	verdictA := make([]bool, len(c.Attacks))
	err := forEachParallel(ctx, len(c.Benign)+len(c.Attacks), func(i int) error {
		if i < len(c.Benign) {
			v, err := e.Detect(ctx, c.Benign[i])
			if err != nil {
				return err
			}
			verdictB[i] = v.Attack
			return nil
		}
		j := i - len(c.Benign)
		v, err := e.Detect(ctx, c.Attacks[j])
		if err != nil {
			return err
		}
		verdictA[j] = v.Attack
		return nil
	})
	if err != nil {
		return ConfusionStats{}, err
	}
	var cs ConfusionStats
	for _, f := range verdictB {
		cs.Record(false, f)
	}
	for _, f := range verdictA {
		cs.Record(true, f)
	}
	return cs, nil
}

// RuntimeStats is the paper's Table-7 measurement for one method/metric.
type RuntimeStats struct {
	// MeanMillis and StdMillis summarize per-image wall time.
	MeanMillis, StdMillis float64
	// N is the number of timed images.
	N int
}

// MeasureRuntime times a scorer per image over the corpus's benign set
// (sequentially, to measure single-image latency as the paper does).
func MeasureRuntime(s detect.Scorer, imgs []*imgcore.Image) (RuntimeStats, error) {
	if s == nil {
		return RuntimeStats{}, errors.New("eval: nil scorer")
	}
	if len(imgs) == 0 {
		return RuntimeStats{}, errors.New("eval: no images to time")
	}
	samples := make([]float64, len(imgs))
	for i, img := range imgs {
		start := time.Now()
		if _, err := s.Score(img); err != nil {
			return RuntimeStats{}, fmt.Errorf("eval: timing image %d: %w", i, err)
		}
		samples[i] = float64(time.Since(start).Microseconds()) / 1000
	}
	mean, std := stats.MeanStd(samples)
	return RuntimeStats{MeanMillis: mean, StdMillis: std, N: len(samples)}, nil
}
