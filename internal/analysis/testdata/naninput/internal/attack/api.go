// Package attack is a fixture: NOT one of the audited packages, so an
// unguarded tensor function is fine here.
package attack

import "naninput/internal/imgcore"

// Craft is out of naninput's scope.
func Craft(src *imgcore.Image) float64 { return src.Pix[0] }
