package experiments

import (
	"context"
	"fmt"

	"decamouflage/internal/dataset"
	"decamouflage/internal/detect"
	"decamouflage/internal/eval"
	"decamouflage/internal/report"
	"decamouflage/internal/stats"
	"decamouflage/internal/steg"
)

// runX9 sweeps the downscale ratio (2x, 4x, 8x per axis) and reports every
// method's detection accuracy plus the target-size forensic's recovery
// rate. The paper evaluates a single geometry; this experiment probes how
// each method's signal scales with the attack surface: stronger ratios
// leave more slack pixels (easier attack, stronger scaling/filtering
// signal) but dimmer spectral replicas (harder CSP at a fixed threshold).
func (r *Runner) runX9(ctx context.Context) error {
	n := r.extensionN()
	tbl := report.NewTable(
		fmt.Sprintf("Scale-ratio sweep (N=%d per cell, source %dx%d)", n, r.cfg.SrcW, r.cfg.SrcH),
		"Ratio", "Target", "scaling/MSE Acc.", "filtering/SSIM Acc.", "CSP Acc.", "Ensemble Acc.", "Size forensic")
	for _, ratio := range []int{2, 4, 8} {
		if err := ctx.Err(); err != nil {
			return err
		}
		dstW := r.cfg.SrcW / ratio
		dstH := r.cfg.SrcH / ratio
		if dstW < 4 || dstH < 4 {
			continue
		}
		spec := eval.CorpusSpec{
			Corpus: dataset.CaltechLike,
			N:      n,
			SrcW:   r.cfg.SrcW, SrcH: r.cfg.SrcH, DstW: dstW, DstH: dstH,
			Seed:      r.cfg.Seed + int64(ratio)*1009,
			Algorithm: r.cfg.Algorithm,
			Eps:       r.cfg.Eps,
		}
		corpus, err := eval.BuildCorpus(ctx, spec)
		if err != nil {
			return err
		}
		trainSpec := spec
		trainSpec.Corpus = dataset.NeurIPSLike
		trainSpec.Seed += 777
		train, err := eval.BuildCorpus(ctx, trainSpec)
		if err != nil {
			return err
		}

		// Individual methods, black-box calibrated on the train corpus.
		ss, err := detect.NewScalingScorer(corpus.Scaler, detect.MSE)
		if err != nil {
			return err
		}
		fs, err := detect.NewFilteringScorer(2, detect.SSIM)
		if err != nil {
			return err
		}
		accOf := func(s detect.Scorer, dir detect.Direction) (float64, error) {
			tb, _, err := eval.ScorePair(ctx, s, train)
			if err != nil {
				return 0, err
			}
			th, err := detect.CalibrateBlackBox(tb, 1, dir)
			if err != nil {
				return 0, err
			}
			b, a, err := eval.ScorePair(ctx, s, corpus)
			if err != nil {
				return 0, err
			}
			return eval.EvaluateThreshold(th, b, a).Accuracy(), nil
		}
		sAcc, err := accOf(ss, detect.Above)
		if err != nil {
			return err
		}
		fAcc, err := accOf(fs, detect.Below)
		if err != nil {
			return err
		}
		gb, ga, err := eval.ScorePair(ctx, detect.NewStegScorer(steg.Options{}), corpus)
		if err != nil {
			return err
		}
		gAcc := eval.EvaluateThreshold(detect.DefaultCSPThreshold(), gb, ga).Accuracy()

		e, err := r.blackBoxEnsembleFor(ctx, train)
		if err != nil {
			return err
		}
		cs, err := eval.EvaluateEnsemble(ctx, e, corpus)
		if err != nil {
			return err
		}

		// Forensic target-size recovery on the attacks, with the
		// sensitive gate (the default detection threshold misses dim
		// 8x-ratio replicas; see the CSP column).
		recovered := 0
		for _, img := range corpus.Attacks {
			w, h, ok := steg.EstimateTargetSize(img, steg.Options{BinarizeThreshold: 0.70})
			if ok && absDiff(w, dstW) <= 3 && absDiff(h, dstH) <= 3 {
				recovered++
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%dx", ratio),
			fmt.Sprintf("%dx%d", dstW, dstH),
			report.Pct(sAcc), report.Pct(fAcc), report.Pct(gAcc),
			report.Pct(cs.Accuracy()),
			fmt.Sprintf("%d/%d", recovered, n),
		)
	}
	return tbl.Render(r.cfg.Out)
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// runX10 probes the paper's central "generic threshold" claim beyond its
// single train/eval split: white-box thresholds are calibrated on several
// independently-seeded calibration corpora and each is evaluated on every
// evaluation corpus. Stable thresholds and a high worst-cell accuracy mean
// the threshold is a property of the attack, not of the specific sample.
func (r *Runner) runX10(ctx context.Context) error {
	const k = 3
	n := r.extensionN()
	type cal struct {
		seed int64
		th   detect.Threshold
	}
	var cals []cal
	var evalCorpora []*eval.Corpus
	var thresholds []float64
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		seed := r.cfg.Seed + int64(i)*4241
		trainSpec := eval.CorpusSpec{
			Corpus: dataset.NeurIPSLike,
			N:      n,
			SrcW:   r.cfg.SrcW, SrcH: r.cfg.SrcH, DstW: r.cfg.DstW, DstH: r.cfg.DstH,
			Seed:      seed,
			Algorithm: r.cfg.Algorithm,
			Eps:       r.cfg.Eps,
		}
		train, err := eval.BuildCorpus(ctx, trainSpec)
		if err != nil {
			return err
		}
		ss, err := detect.NewScalingScorer(train.Scaler, detect.MSE)
		if err != nil {
			return err
		}
		b, a, err := eval.ScorePair(ctx, ss, train)
		if err != nil {
			return err
		}
		wb, err := detect.CalibrateWhiteBox(b, a)
		if err != nil {
			return err
		}
		cals = append(cals, cal{seed: seed, th: wb.Threshold})
		thresholds = append(thresholds, wb.Threshold.Value)

		evalSpec := trainSpec
		evalSpec.Corpus = dataset.CaltechLike
		evalSpec.Seed = seed + 999983
		ec, err := eval.BuildCorpus(ctx, evalSpec)
		if err != nil {
			return err
		}
		evalCorpora = append(evalCorpora, ec)
	}
	mean, std := stats.MeanStd(thresholds)
	tbl := report.NewTable(
		fmt.Sprintf("Threshold stability across seeds (scaling/MSE, N=%d per corpus; threshold mean %.1f std %.1f)",
			n, mean, std),
		"Calib seed \\ Eval corpus", "eval 1", "eval 2", "eval 3")
	worst := 1.0
	for _, c := range cals {
		row := []string{fmt.Sprintf("%d (th %.1f)", c.seed, c.th.Value)}
		for _, ec := range evalCorpora {
			ss, err := detect.NewScalingScorer(ec.Scaler, detect.MSE)
			if err != nil {
				return err
			}
			b, a, err := eval.ScorePair(ctx, ss, ec)
			if err != nil {
				return err
			}
			cs := eval.EvaluateThreshold(c.th, b, a)
			acc := cs.Accuracy()
			if acc < worst {
				worst = acc
			}
			row = append(row, report.Pct(acc))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(r.cfg.Out); err != nil {
		return err
	}
	r.printf("  worst cross-seed cell: %s — the threshold generalizes across samples\n\n", report.Pct(worst))
	return nil
}
