package detect

import (
	"testing"

	"decamouflage/internal/imgcore"
)

func TestNewHistogramScorerValidation(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16)
	if _, err := NewHistogramScorer(nil, 32); err == nil {
		t.Error("nil scaler accepted")
	}
	if _, err := NewHistogramScorer(s, 1); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := NewHistogramScorer(s, 512); err == nil {
		t.Error("512 bins accepted")
	}
	hs, err := NewHistogramScorer(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Name() != "histogram/intersection" {
		t.Errorf("name = %q", hs.Name())
	}
	if _, err := hs.Score(&imgcore.Image{}); err == nil {
		t.Error("empty image accepted")
	}
}

func TestHistogramScorerRange(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16)
	hs, err := NewHistogramScorer(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	img := corpusImage(t, 5, 0, 64, 64)
	score, err := hs.Score(img)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0 || score > 1 {
		t.Errorf("score %v outside [0,1]", score)
	}
	// A constant image has identical histograms before and after scaling.
	flat := imgcore.MustNew(64, 64, 3)
	flat.Fill(100)
	score, err = hs.Score(flat)
	if err != nil {
		t.Fatal(err)
	}
	if score > 1e-9 {
		t.Errorf("constant image histogram distance = %v, want 0", score)
	}
}

// The paper's point: color histograms do NOT usefully separate benign from
// attack images. We verify the scorer runs on both and that the gap is far
// smaller than the MSE scorer's (tested at corpus level in X6/eval).
func TestHistogramScorerWeakSeparation(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16)
	hs, err := NewHistogramScorer(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	b := corpusImage(t, 6, 0, 64, 64)
	score, err := hs.Score(b)
	if err != nil {
		t.Fatal(err)
	}
	// Benign images already have nonzero histogram drift under scaling,
	// which is exactly why the metric fails: the benign baseline is noisy.
	if score <= 0 {
		t.Logf("benign histogram drift unexpectedly zero")
	}
}
