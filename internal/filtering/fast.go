// Fast sliding-window kernels. The naive per-pixel reductions in
// filtering.go remain as the bit-exactness reference (and as the generic
// Rank implementation); the public Minimum/Maximum/Median/Box entry points
// route through the implementations in this file:
//
//   - min/max: the van Herk–Gil–Werman two-pass monotone-wedge algorithm,
//     run separably (rows then columns) — O(1) comparisons per sample
//     independent of window size. Because it only compares, its output is
//     bit-identical to the naive window scan for finite inputs.
//   - median: a per-row sliding sorted window — each step removes the
//     leaving column and inserts the entering column by binary search
//     instead of re-collecting and sorting size² samples per pixel. The
//     maintained multiset equals the naive window multiset, so the median
//     is bit-identical for finite inputs.
//   - box: separable running row/column sums — O(1) additions per sample.
//     Summation order differs from the naive window scan, so box output is
//     equal only to tolerance (see the ULP property tests).
//
// All three preserve the naive path's replicate-clamp border semantics and
// OpenCV anchoring exactly: even sizes anchor top-left (offsets [0, size)),
// odd sizes center (offsets [-size/2, size/2]). Scratch buffers are
// allocated once per parallel band and reused across that band's rows or
// columns.
package filtering

import (
	"context"
	"fmt"
	"math"
	"sort"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
)

// windowOffsets returns the OpenCV-anchored tap range [lo, hi] for a window
// of the given size: top-left anchored for even sizes, centered for odd.
func windowOffsets(size int) (lo, hi int) {
	lo = 0
	if size%2 == 1 {
		lo = -(size / 2)
	}
	return lo, lo + size - 1
}

// padClamped fills dst (length n+size-1) with src samples under replicate
// clamping such that the window of output i covers dst[i : i+size]:
// dst[t] = src[clamp(t+lo)] at the given stride.
//
//declint:hot
func padClamped(dst []float64, src []float64, n, stride, lo int) {
	for t := range dst {
		j := t + lo
		if j < 0 {
			j = 0
		} else if j >= n {
			j = n - 1
		}
		dst[t] = src[j*stride]
	}
}

// slidingMin writes out[i] = min(padded[i : i+w]) for every i in
// [0, len(padded)-w+1) using van Herk–Gil–Werman: one backward suffix-wedge
// pass and one forward prefix-wedge pass over blocks of w samples, then a
// single min per output — ~3 comparisons per sample regardless of w.
// wedge is scratch of len(padded).
//
//declint:hot
func slidingMin(out, padded, wedge []float64, w int) {
	p := len(padded)
	if w == 2 {
		// The paper's 2×2 hot path: one comparison per sample beats the
		// wedge bookkeeping.
		for i := range out {
			if padded[i+1] < padded[i] {
				out[i] = padded[i+1]
			} else {
				out[i] = padded[i]
			}
		}
		return
	}
	// Backward pass: wedge[t] = min(padded[t : blockEnd]) within t's block.
	for t := p - 1; t >= 0; t-- {
		if t == p-1 || (t+1)%w == 0 {
			wedge[t] = padded[t]
		} else if padded[t] < wedge[t+1] {
			wedge[t] = padded[t]
		} else {
			wedge[t] = wedge[t+1]
		}
	}
	// Forward pass fused with output: prefix[t] = min(padded[blockStart : t+1]).
	var prefix float64
	for t := 0; t < p; t++ {
		if t%w == 0 {
			prefix = padded[t]
		} else if padded[t] < prefix {
			prefix = padded[t]
		}
		if i := t - w + 1; i >= 0 {
			if wedge[i] < prefix {
				out[i] = wedge[i]
			} else {
				out[i] = prefix
			}
		}
	}
}

// slidingMax is slidingMin with the comparison flipped.
//
//declint:hot
func slidingMax(out, padded, wedge []float64, w int) {
	p := len(padded)
	if w == 2 {
		for i := range out {
			if padded[i+1] > padded[i] {
				out[i] = padded[i+1]
			} else {
				out[i] = padded[i]
			}
		}
		return
	}
	for t := p - 1; t >= 0; t-- {
		if t == p-1 || (t+1)%w == 0 {
			wedge[t] = padded[t]
		} else if padded[t] > wedge[t+1] {
			wedge[t] = padded[t]
		} else {
			wedge[t] = wedge[t+1]
		}
	}
	var prefix float64
	for t := 0; t < p; t++ {
		if t%w == 0 {
			prefix = padded[t]
		} else if padded[t] > prefix {
			prefix = padded[t]
		}
		if i := t - w + 1; i >= 0 {
			if wedge[i] > prefix {
				out[i] = wedge[i]
			} else {
				out[i] = prefix
			}
		}
	}
}

// minMaxFilter is the fast Minimum/Maximum implementation: a horizontal
// vHGW sweep into an intermediate image, then a vertical vHGW sweep.
// Per-axis clamping makes the rectangular window exactly separable:
// extremum over {(clampX(x+dx), clampY(y+dy))} = vertical extremum of
// per-row horizontal extrema.
func minMaxFilter(ctx context.Context, img *imgcore.Image, size int, isMax bool, popts ...parallel.Option) (*imgcore.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	lo, _ := windowOffsets(size)
	tmp := img.Clone()
	out := img.Clone()
	pass := slidingMin
	if isMax {
		pass = slidingMax
	}

	// Horizontal: each chunk owns a disjoint band of rows of tmp; scratch is
	// allocated once per band and reused across its rows and channels.
	rowCost := img.W * img.C
	hOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	err := parallel.For(ctx, img.H, func(yLo, yHi int) error {
		padded := make([]float64, img.W+size-1)
		wedge := make([]float64, len(padded))
		line := make([]float64, img.W)
		for y := yLo; y < yHi; y++ {
			for c := 0; c < img.C; c++ {
				padClamped(padded, img.Pix[(y*img.W)*img.C+c:], img.W, img.C, lo)
				pass(line, padded, wedge, size)
				for x := 0; x < img.W; x++ {
					tmp.Pix[(y*img.W+x)*img.C+c] = line[x]
				}
			}
		}
		return nil
	}, hOpts...)
	if err != nil {
		return nil, err
	}

	// Vertical: each chunk owns a disjoint band of columns of out, reading
	// all of tmp; each column is gathered, swept, and scattered through the
	// band's scratch.
	colCost := img.H * img.C
	vOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(colCost, minFilterWork)),
	}, popts...)
	err = parallel.For(ctx, img.W, func(xLo, xHi int) error {
		padded := make([]float64, img.H+size-1)
		wedge := make([]float64, len(padded))
		line := make([]float64, img.H)
		for x := xLo; x < xHi; x++ {
			for c := 0; c < img.C; c++ {
				padClamped(padded, tmp.Pix[x*img.C+c:], img.H, img.W*img.C, lo)
				pass(line, padded, wedge, size)
				for y := 0; y < img.H; y++ {
					out.Pix[(y*img.W+x)*img.C+c] = line[y]
				}
			}
		}
		return nil
	}, vOpts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sortedWindow is the median filter's maintained multiset: the current
// window's samples in sort.Float64s order (NaNs first, then ascending).
type sortedWindow struct {
	vals []float64
}

// reset refills the window from scratch and sorts it.
//
//declint:hot
func (s *sortedWindow) reset(vals []float64) {
	s.vals = append(s.vals[:0], vals...)
	sort.Float64s(s.vals)
}

// find returns the index of one instance of v, located by binary search
// and disambiguated by bit pattern so ±0 and NaN payloads are matched
// precisely. The caller guarantees v is present. Returns -1 if it is not
// (only reachable on contract violation; callers treat it as a no-op).
//
//declint:hot
func (s *sortedWindow) find(v float64) int {
	vb := math.Float64bits(v)
	i := 0
	if !math.IsNaN(v) {
		i = sort.SearchFloat64s(s.vals, v)
	}
	for ; i < len(s.vals); i++ {
		if math.Float64bits(s.vals[i]) == vb {
			return i
		}
	}
	// Bit pattern not found from the search position (ties with a different
	// zero sign sorted earlier, or NaN ordering): linear scan.
	for i = 0; i < len(s.vals); i++ {
		if math.Float64bits(s.vals[i]) == vb {
			return i
		}
	}
	return -1
}

// replace removes one instance of old and inserts new with a single shift
// of the span between the two positions — half the copying of a separate
// remove + insert. NaNs sort to the front, matching sort.Float64s.
//
//declint:hot
func (s *sortedWindow) replace(old, new float64) {
	if math.Float64bits(old) == math.Float64bits(new) {
		// Same sample entering and leaving (frequent at clamped borders):
		// the multiset is unchanged.
		return
	}
	i := s.find(old)
	if i < 0 {
		return
	}
	j := 0
	if !math.IsNaN(new) {
		j = sort.SearchFloat64s(s.vals, new)
	}
	if j > i {
		// new lands to the right of the removed slot: shift the span left.
		copy(s.vals[i:], s.vals[i+1:j])
		s.vals[j-1] = new
	} else {
		// new lands at or left of the removed slot: shift the span right.
		copy(s.vals[j+1:i+1], s.vals[j:i])
		s.vals[j] = new
	}
}

// median returns the window median under the same rule as pickMedian:
// middle element for odd counts, mean of the two middles for even.
//
//declint:hot
func (s *sortedWindow) median() float64 {
	n := len(s.vals)
	if n%2 == 1 {
		return s.vals[n/2]
	}
	return (s.vals[n/2-1] + s.vals[n/2]) / 2
}

// medianFilter is the fast Median implementation: per row, the sorted
// window slides along x — each step removes the leaving column's size
// samples and inserts the entering column's size samples by binary search
// (O(size·(log size + size)) per pixel instead of O(size²·log size)).
func medianFilter(ctx context.Context, img *imgcore.Image, size int, popts ...parallel.Option) (*imgcore.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	lo, hi := windowOffsets(size)
	out := img.Clone()
	rowCost := img.W * img.C * size * (size + 4)
	opts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	err := parallel.For(ctx, img.H, func(yLo, yHi int) error {
		// Band-local scratch, reused across every pixel in the band.
		win := sortedWindow{vals: make([]float64, 0, size*size)}
		seed := make([]float64, 0, size*size)
		rows := make([]int, size) // clamped row offsets of the window's rows
		for y := yLo; y < yHi; y++ {
			for k := 0; k < size; k++ {
				yy := y + lo + k
				if yy < 0 {
					yy = 0
				} else if yy >= img.H {
					yy = img.H - 1
				}
				rows[k] = yy * img.W
			}
			for c := 0; c < img.C; c++ {
				// Seed the window at x=0.
				seed = seed[:0]
				for _, base := range rows {
					for dx := lo; dx <= hi; dx++ {
						xx := dx
						if xx < 0 {
							xx = 0
						} else if xx >= img.W {
							xx = img.W - 1
						}
						seed = append(seed, img.Pix[(base+xx)*img.C+c])
					}
				}
				win.reset(seed)
				out.Set(0, y, c, win.median())
				// Slide: replace the column leaving the window with the one
				// entering it. Clamped taps repeat border samples, so the
				// multiset stays exactly the naive window's.
				for x := 1; x < img.W; x++ {
					xm := x - 1 + lo
					if xm < 0 {
						xm = 0
					} else if xm >= img.W {
						xm = img.W - 1
					}
					xp := x + hi
					if xp >= img.W {
						xp = img.W - 1
					}
					for _, base := range rows {
						win.replace(img.Pix[(base+xm)*img.C+c], img.Pix[(base+xp)*img.C+c])
					}
					out.Set(x, y, c, win.median())
				}
			}
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// slidingSum writes out[i] = sum(padded[i : i+w]) as a running sum: one
// add and one subtract per step.
//
//declint:hot
func slidingSum(out, padded []float64, w int) {
	var s float64
	for t := 0; t < w; t++ {
		s += padded[t]
	}
	out[0] = s
	for i := 1; i < len(out); i++ {
		s += padded[i+w-1] - padded[i-1]
		out[i] = s
	}
}

// boxFilter is the fast Box implementation: separable running sums (rows
// then columns), dividing once by size² at the end. The summation order
// differs from the naive per-window scan, so outputs agree with the naive
// reference to tolerance, not bit-exactly.
func boxFilter(ctx context.Context, img *imgcore.Image, size int, popts ...parallel.Option) (*imgcore.Image, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadWindow, size)
	}
	lo, _ := windowOffsets(size)
	tmp := img.Clone()
	out := img.Clone()
	inv := 1 / float64(size*size)

	rowCost := img.W * img.C
	hOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(rowCost, minFilterWork)),
	}, popts...)
	err := parallel.For(ctx, img.H, func(yLo, yHi int) error {
		padded := make([]float64, img.W+size-1)
		line := make([]float64, img.W)
		for y := yLo; y < yHi; y++ {
			for c := 0; c < img.C; c++ {
				padClamped(padded, img.Pix[(y*img.W)*img.C+c:], img.W, img.C, lo)
				slidingSum(line, padded, size)
				for x := 0; x < img.W; x++ {
					tmp.Pix[(y*img.W+x)*img.C+c] = line[x]
				}
			}
		}
		return nil
	}, hOpts...)
	if err != nil {
		return nil, err
	}

	colCost := img.H * img.C
	vOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(colCost, minFilterWork)),
	}, popts...)
	err = parallel.For(ctx, img.W, func(xLo, xHi int) error {
		padded := make([]float64, img.H+size-1)
		line := make([]float64, img.H)
		for x := xLo; x < xHi; x++ {
			for c := 0; c < img.C; c++ {
				padClamped(padded, tmp.Pix[x*img.C+c:], img.H, img.W*img.C, lo)
				slidingSum(line, padded, size)
				for y := 0; y < img.H; y++ {
					out.Pix[(y*img.W+x)*img.C+c] = line[y] * inv
				}
			}
		}
		return nil
	}, vOpts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}
