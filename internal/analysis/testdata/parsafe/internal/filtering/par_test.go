package filtering

import (
	"context"

	"parsafe/internal/parallel"
)

// Test files are exempt: this would be a finding in library code.
func racyHelper(out []float64) error {
	return parallel.For(context.Background(), len(out), func(lo, hi int) error {
		out[0] = 1
		return nil
	})
}
