package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"decamouflage/internal/testutil"
)

func TestMeanVarianceStd(t *testing.T) {
	tests := []struct {
		name           string
		xs             []float64
		mean, variance float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"symmetric", []float64{-1, 0, 1}, 0, 2.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); math.Abs(got-tt.variance) > 1e-12 {
				t.Errorf("Variance = %v, want %v", got, tt.variance)
			}
			if got := StdDev(tt.xs); math.Abs(got-math.Sqrt(tt.variance)) > 1e-12 {
				t.Errorf("StdDev = %v", got)
			}
		})
	}
}

func TestMeanStdMatchesSeparate(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	m, s := MeanStd(xs)
	if math.Abs(m-Mean(xs)) > 1e-12 || math.Abs(s-StdDev(xs)) > 1e-12 {
		t.Errorf("MeanStd = (%v,%v), want (%v,%v)", m, s, Mean(xs), StdDev(xs))
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("MinMax(nil) = nil error")
	}
	lo, hi, err := MinMax([]float64{3, -2, 7, 0})
	if err != nil || !testutil.BitEqual(lo, -2) || !testutil.BitEqual(hi, 7) {
		t.Fatalf("MinMax = %v,%v,%v", lo, hi, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(empty) = nil error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) = nil error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) = nil error")
	}
	if got, err := Percentile([]float64{7}, 99); err != nil || !testutil.BitEqual(got, 7) {
		t.Errorf("Percentile(single,99) = %v,%v", got, err)
	}
	med, err := Median(xs)
	if err != nil || !testutil.BitEqual(med, 3) {
		t.Errorf("Median = %v,%v", med, err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		n := int(seed%97+3) % 50
		if n < 3 {
			n = 3
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, hi, _ := MinMax(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-9 || v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNormalFit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = 10 + 3*rng.NormFloat64()
	}
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatalf("FitNormal: %v", err)
	}
	if math.Abs(fit.Mean-10) > 0.1 || math.Abs(fit.Std-3) > 0.1 {
		t.Errorf("fit = %+v, want mean~10 std~3", fit)
	}
	if got := fit.CDF(10); math.Abs(got-0.5) > 0.01 {
		t.Errorf("CDF(mean) = %v, want ~0.5", got)
	}
	q, err := fit.Quantile(0.5)
	if err != nil || math.Abs(q-fit.Mean) > 1e-6 {
		t.Errorf("Quantile(0.5) = %v,%v, want mean", q, err)
	}
	q1, _ := fit.Quantile(0.01)
	q99, _ := fit.Quantile(0.99)
	if !(q1 < fit.Mean && fit.Mean < q99) {
		t.Errorf("quantiles not ordered: %v %v %v", q1, fit.Mean, q99)
	}
	if _, err := FitNormal(nil); err == nil {
		t.Error("FitNormal(empty) = nil error")
	}
	if _, err := fit.Quantile(0); err == nil {
		t.Error("Quantile(0) = nil error")
	}
	if _, err := fit.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) = nil error")
	}
}

func TestNormalFitDegenerate(t *testing.T) {
	fit, err := FitNormal([]float64{4, 4, 4})
	if err != nil {
		t.Fatalf("FitNormal: %v", err)
	}
	if !testutil.BitEqual(fit.Std, 0) {
		t.Fatalf("Std = %v, want 0", fit.Std)
	}
	if !testutil.BitEqual(fit.CDF(3.9), 0) || !testutil.BitEqual(fit.CDF(4.1), 1) {
		t.Error("degenerate CDF not a step function")
	}
	q, err := fit.Quantile(0.3)
	if err != nil || !testutil.BitEqual(q, 4) {
		t.Errorf("degenerate Quantile = %v,%v", q, err)
	}
}

func TestOverlapCoefficient(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4}
	farB := []float64{100, 101, 102}
	ov, err := OverlapCoefficient(a, farB, 20)
	if err != nil {
		t.Fatalf("OverlapCoefficient: %v", err)
	}
	if ov > 0.01 {
		t.Errorf("overlap of disjoint sets = %v, want ~0", ov)
	}
	ov, err = OverlapCoefficient(a, a, 20)
	if err != nil || math.Abs(ov-1) > 1e-9 {
		t.Errorf("self overlap = %v,%v, want 1", ov, err)
	}
	if _, err := OverlapCoefficient(nil, a, 10); err == nil {
		t.Error("OverlapCoefficient(empty) = nil error")
	}
	if _, err := OverlapCoefficient(a, a, 0); err == nil {
		t.Error("OverlapCoefficient(bins=0) = nil error")
	}
	ov, err = OverlapCoefficient([]float64{5, 5}, []float64{5}, 4)
	if err != nil || !testutil.BitEqual(ov, 1) {
		t.Errorf("point-mass overlap = %v,%v, want 1", ov, err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 5, 9.9, 10, -3, 42}
	h, err := NewHistogram(xs, 0, 10, 10)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if h.Total != len(xs) {
		t.Errorf("Total = %d", h.Total)
	}
	var sum int
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(xs) {
		t.Errorf("bin counts sum to %d, want %d (clamping)", sum, len(xs))
	}
	// -3 clamps to bin 0; 42 and 10 clamp to last bin.
	if h.Counts[0] < 2 {
		t.Errorf("edge bin 0 = %d, want >= 2", h.Counts[0])
	}
	if h.Counts[9] < 3 {
		t.Errorf("edge bin 9 = %d, want >= 3", h.Counts[9])
	}
	if got := h.BinCenter(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 0.5", got)
	}
	if h.MaxCount() < 3 {
		t.Errorf("MaxCount = %d", h.MaxCount())
	}
	if _, err := NewHistogram(xs, 5, 5, 4); err == nil {
		t.Error("NewHistogram(bad range) = nil error")
	}
	if _, err := NewHistogram(xs, 0, 1, 0); err == nil {
		t.Error("NewHistogram(0 bins) = nil error")
	}
}

func TestAutoHistogram(t *testing.T) {
	h, err := AutoHistogram([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatalf("AutoHistogram: %v", err)
	}
	if !testutil.BitEqual(h.Lo, 1) || !testutil.BitEqual(h.Hi, 3) {
		t.Errorf("range = [%v,%v]", h.Lo, h.Hi)
	}
	h, err = AutoHistogram([]float64{7, 7}, 3)
	if err != nil {
		t.Fatalf("AutoHistogram(constant): %v", err)
	}
	if h.Counts[0] != 2 {
		t.Errorf("constant data bin = %v", h.Counts)
	}
	if _, err := AutoHistogram(nil, 3); err == nil {
		t.Error("AutoHistogram(empty) = nil error")
	}
}

// Property: histogram preserves total sample count for any range.
func TestHistogramConservesMassProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		n := int(seed%53+53)%53 + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		h, err := NewHistogram(xs, -50, 50, 13)
		if err != nil {
			return false
		}
		var sum int
		for _, c := range h.Counts {
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: quantile and CDF are approximate inverses for non-degenerate fits.
func TestQuantileCDFInverseProperty(t *testing.T) {
	fit := NormalFit{Mean: 5, Std: 2, N: 100}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.99} {
		x, err := fit.Quantile(q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", q, err)
		}
		if got := fit.CDF(x); math.Abs(got-q) > 1e-6 {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestPercentileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for p := 0; p <= 100; p += 10 {
		got, err := Percentile(xs, float64(p))
		if err != nil {
			t.Fatal(err)
		}
		want := sorted[p] // with n=101, rank = p/100*100 = p exactly
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Percentile(%d) = %v, want %v", p, got, want)
		}
	}
}
