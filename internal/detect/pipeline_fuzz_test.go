package detect

import (
	"context"
	"math"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/testutil"
)

// FuzzPipelineDetect cross-checks the stage-DAG pipeline against the
// legacy per-scorer path on adversarial inputs: NaN/Inf pixels, 1×N and
// N×1 geometries, and degenerate scale ratios (identity, upscale, down
// to 1×1). The contract: both paths agree on error presence, and when
// both succeed every score is bit-identical (NaN pairs included) along
// with the votes and final verdict.
func FuzzPipelineDetect(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(4), uint8(4), false, []byte{0, 50, 100}, uint8(0))
	f.Add(uint8(1), uint8(24), uint8(1), uint8(8), true, []byte{255, 1}, uint8(1))   // 1×N
	f.Add(uint8(24), uint8(1), uint8(8), uint8(1), false, []byte{9}, uint8(2))       // N×1
	f.Add(uint8(7), uint8(11), uint8(7), uint8(11), true, []byte("prime"), uint8(3)) // identity ratio
	f.Add(uint8(5), uint8(5), uint8(13), uint8(17), false, []byte{3, 7}, uint8(0))   // "down"scale that upscales
	f.Add(uint8(9), uint8(9), uint8(1), uint8(1), true, []byte{4}, uint8(2))         // collapse to 1×1
	f.Fuzz(func(t *testing.T, w, h, dw, dh uint8, grayscale bool, pix []byte, poison uint8) {
		srcW, srcH := int(w%33), int(h%33)
		dstW, dstH := int(dw%33), int(dh%33)
		if srcW == 0 || srcH == 0 || dstW == 0 || dstH == 0 {
			return // scaler construction rejects these; nothing differential to check
		}
		channels := 3
		if grayscale {
			channels = 1
		}
		img := imgcore.MustNew(srcW, srcH, channels)
		for i := range img.Pix {
			var v float64
			if len(pix) > 0 {
				v = float64(pix[i%len(pix)])
			}
			// Poison a stride of pixels with non-finite and extreme values
			// so every stage sees them propagate.
			switch poison % 4 {
			case 1:
				if i%7 == 3 {
					v = math.NaN()
				}
			case 2:
				if i%11 == 5 {
					v = math.Inf(1)
				}
			case 3:
				if i%13 == 2 {
					v = -v * 1e308
				}
			}
			img.Pix[i] = v
		}

		e := matrixEnsemble(t, srcW, srcH, dstW, dstH)
		ctx := context.Background()
		pipe, perr := e.Detect(ctx, img)
		legacy, lerr := e.DetectLegacy(ctx, img)
		if (perr == nil) != (lerr == nil) {
			t.Fatalf("error disagreement: pipeline=%v legacy=%v", perr, lerr)
		}
		if perr != nil {
			return // both rejected; wrapped causes may name different stages
		}
		if pipe.Attack != legacy.Attack || pipe.Votes != legacy.Votes {
			t.Fatalf("verdict disagreement: pipeline (attack=%v votes=%d) vs legacy (attack=%v votes=%d)",
				pipe.Attack, pipe.Votes, legacy.Attack, legacy.Votes)
		}
		if len(pipe.Verdicts) != len(legacy.Verdicts) {
			t.Fatalf("verdict count %d != %d", len(pipe.Verdicts), len(legacy.Verdicts))
		}
		for i := range pipe.Verdicts {
			ps, ls := pipe.Verdicts[i].Score, legacy.Verdicts[i].Score
			// Zero-tolerance ApproxEqual is BitEqual plus NaN==NaN, which is
			// exactly the contract once poisoned pixels reach the metrics.
			if !testutil.ApproxEqual(ps, ls, 0, 0) {
				t.Fatalf("verdict %d (%s): pipeline score %v != legacy %v",
					i, pipe.Verdicts[i].Method, ps, ls)
			}
			if pipe.Verdicts[i].Attack != legacy.Verdicts[i].Attack {
				t.Fatalf("verdict %d (%s): attack flag disagreement", i, pipe.Verdicts[i].Method)
			}
		}
	})
}
