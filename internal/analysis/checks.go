package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ---- shared helpers ----------------------------------------------------

func (p *Package) pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// pkgNameOf resolves e to the imported package it names, or nil.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// selectsPkgFunc reports whether e is a selector <pkg>.<name> for the given
// import path.
func selectsPkgFunc(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	pn := pkgNameOf(info, sel.X)
	return pn != nil && pn.Imported().Path() == pkgPath
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && b.Info()&types.IsComplex == 0
}

// calleeName returns the bare name of a call's callee: f(...) -> "f",
// x.M(...) -> "M". Empty when the callee is not a named selector or ident.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// matchesAnySuffix reports whether the package path matches any configured
// suffix, in either its library or external-test (path + "_test") form.
func matchesAnySuffix(pkg *Package, suffixes []string) bool {
	for _, s := range suffixes {
		if pkg.HasSuffix(s) || pkg.HasSuffix(s+"_test") {
			return true
		}
	}
	return false
}

// ---- noraw-go ----------------------------------------------------------

// checkNoRawGo forbids raw `go` statements and sync.WaitGroup worker pools
// outside the one package that is allowed to own them: internal/parallel.
// Everything else must express fan-out through the substrate, which is what
// makes "chunk boundaries depend only on range length and grain" a global
// property instead of a per-call-site promise.
func checkNoRawGo(pkg *Package, cfg Config) []Finding {
	if pkg.HasSuffix(cfg.ParallelPkg) || pkg.HasSuffix(cfg.ParallelPkg+"_test") {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				out = append(out, Finding{
					Check: "noraw-go", Pos: pkg.pos(n),
					Msg: "raw go statement outside " + cfg.ParallelPkg +
						"; route fan-out through the parallel substrate",
				})
			case *ast.SelectorExpr:
				if pn := pkgNameOf(pkg.Info, n.X); pn != nil &&
					pn.Imported().Path() == "sync" && n.Sel.Name == "WaitGroup" {
					out = append(out, Finding{
						Check: "noraw-go", Pos: pkg.pos(n),
						Msg: "sync.WaitGroup worker pool outside " + cfg.ParallelPkg +
							"; route fan-out through the parallel substrate",
					})
				}
			}
			return true
		})
	}
	return out
}

// ---- determinism -------------------------------------------------------

// orderDependentSink reports the first statement inside a map-range body
// whose effect depends on iteration order: growing a slice, writing or
// formatting output, or sending on a channel. Pure accumulation (sums,
// counters, building another map) is order-independent and allowed.
func orderDependentSink(body *ast.BlockStmt, info *types.Info) (ast.Node, string) {
	var node ast.Node
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if node != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			node, what = n, "channel send"
		case *ast.CallExpr:
			name := calleeName(n)
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin && name == "append" {
					node, what = n, "append"
					return false
				}
			}
			for _, prefix := range []string{"Print", "Fprint", "Sprint", "Write"} {
				if strings.HasPrefix(name, prefix) {
					node, what = n, name+" call"
					return false
				}
			}
		}
		return true
	})
	return node, what
}

// checkDeterminism forbids the three classic nondeterminism sources in the
// numeric kernel packages' non-test code: wall-clock reads, math/rand, and
// map iteration feeding order-dependent output.
func checkDeterminism(pkg *Package, cfg Config) []Finding {
	if !matchesAnySuffix(pkg, cfg.DeterminismPkgs) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, imp := range f.Ast.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, Finding{
					Check: "determinism", Pos: pkg.pos(imp),
					Msg: "import of " + path + " in a kernel package; " +
						"thread explicit seeds through a deterministic source instead",
				})
			}
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if selectsPkgFunc(pkg.Info, n, "time", "Now") {
					out = append(out, Finding{
						Check: "determinism", Pos: pkg.pos(n),
						Msg: "time.Now in a kernel package makes output time-dependent",
					})
				}
			case *ast.RangeStmt:
				if n.X == nil {
					return true
				}
				tv, ok := pkg.Info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink, what := orderDependentSink(n.Body, pkg.Info); sink != nil {
					out = append(out, Finding{
						Check: "determinism", Pos: pkg.pos(n),
						Msg: "map iteration feeds order-dependent output (" + what +
							"); iterate sorted keys instead",
					})
				}
			}
			return true
		})
	}
	return out
}

// ---- floateq -----------------------------------------------------------

// checkFloatEq forbids exact ==/!= between float operands everywhere —
// test code included, since the serial-vs-parallel equivalence suites are
// exactly where accidental exact comparisons hide. Intentional bit-equality
// lives in the allowlisted internal/testutil helpers; everything else
// either calls those or carries an ignore directive explaining itself.
func checkFloatEq(pkg *Package, cfg Config) []Finding {
	if matchesAnySuffix(pkg, cfg.FloatEqAllowPkgs) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := pkg.Info.Types[be.X]
			ty, oky := pkg.Info.Types[be.Y]
			if okx && oky && isFloat(tx.Type) && isFloat(ty.Type) {
				out = append(out, Finding{
					Check: "floateq", Pos: pkg.pos(be),
					Msg: "exact " + be.Op.String() + " on float operands; " +
						"use a tolerance, or internal/testutil for intentional bit equality",
				})
			}
			return true
		})
	}
	return out
}

// ---- naninput ----------------------------------------------------------

// tensorParam reports whether the field's type is (a pointer, slice, array,
// or variadic form of) one of the configured tensor types.
func tensorParam(info *types.Info, field *ast.Field, tensorTypes []string) bool {
	tv, ok := info.Types[field.Type]
	if !ok {
		return false
	}
	t := tv.Type
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, want := range tensorTypes {
		if full == want || strings.HasSuffix(full, "/"+want) {
			return true
		}
	}
	return false
}

// callsGuard reports whether the body directly calls one of the configured
// NaN/Inf guard functions (Validate, HasNaN, math.IsNaN, ...).
func callsGuard(body *ast.BlockStmt, guards []string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		for _, g := range guards {
			if name == g {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// docHasNaNOK reports whether the func's doc comment carries the
// //declint:nan-ok audit marker.
func docHasNaNOK(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), nanOKMarker) {
			return true
		}
	}
	return false
}

// checkNaNInput audits the scoring surface: every exported function or
// method in the metrics/steg/detect packages that accepts an image tensor
// must either call a NaN/Inf guard in its own body or carry a
// //declint:nan-ok marker in its doc comment stating the handling was
// audited (e.g. the function is total over NaN/Inf, or delegates to a
// callee that guards). The paper's thresholds are meaningless on NaN
// scores, so "what happens on a poisoned tensor" must be a decided
// property of every entry point, not an accident.
func checkNaNInput(pkg *Package, cfg Config) []Finding {
	if !matchesAnySuffix(pkg, cfg.NaNPkgs) {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			hasTensor := false
			for _, field := range fd.Type.Params.List {
				if tensorParam(pkg.Info, field, cfg.TensorTypes) {
					hasTensor = true
					break
				}
			}
			if !hasTensor {
				continue
			}
			if docHasNaNOK(fd.Doc) {
				continue
			}
			if fd.Body != nil && callsGuard(fd.Body, cfg.GuardFuncs) {
				continue
			}
			out = append(out, Finding{
				Check: "naninput", Pos: pkg.pos(fd.Name),
				Msg: "exported " + fd.Name.Name + " accepts an image tensor but neither " +
					"guards NaN/Inf nor documents handling with " + nanOKMarker,
			})
		}
	}
	return out
}

// ---- errdrop -----------------------------------------------------------

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether the call's result set includes error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// checkErrDrop forbids `_ = f()` discards of error-returning calls in
// non-test code. A dropped error in a numeric pipeline silently converts a
// failed computation into stale or zero-valued output — exactly the class
// of bug the detection thresholds cannot survive.
func checkErrDrop(pkg *Package, cfg Config) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					return true
				}
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !returnsError(pkg.Info, call) {
				return true
			}
			out = append(out, Finding{
				Check: "errdrop", Pos: pkg.pos(as),
				Msg: "error from " + callLabel(call) + " discarded with _; " +
					"handle it or annotate why it cannot fail",
			})
			return true
		})
	}
	return out
}

func callLabel(call *ast.CallExpr) string {
	if name := calleeName(call); name != "" {
		return name
	}
	return "call"
}

// ---- obsonly -----------------------------------------------------------

// checkObsOnly restricts the profiling and metrics-exposition imports to
// the observability package and the cmd/ entry points. Library code routes
// all measurement through internal/obs, which keeps the disabled path a
// single atomic load and the exposition surface in one audited place.
func checkObsOnly(pkg *Package, cfg Config) []Finding {
	if len(cfg.ObsOnlyImports) == 0 {
		return nil
	}
	if cfg.ObsPkg != "" &&
		(pkg.HasSuffix(cfg.ObsPkg) || pkg.HasSuffix(cfg.ObsPkg+"_test")) {
		return nil
	}
	if isCmdPkg(pkg) {
		return nil
	}
	restricted := map[string]bool{}
	for _, p := range cfg.ObsOnlyImports {
		restricted[p] = true
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, imp := range f.Ast.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if !restricted[path] {
				continue
			}
			out = append(out, Finding{
				Check: "obsonly", Pos: pkg.pos(imp),
				Msg: "import of " + path + " outside " + cfg.ObsPkg +
					" and cmd/; route observability through " + cfg.ObsPkg,
			})
		}
	}
	return out
}

// isCmdPkg reports whether the package lives under a cmd/ directory — an
// entry point that may wire profiling and exposition directly.
func isCmdPkg(pkg *Package) bool {
	for _, seg := range strings.Split(pkg.Path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}
