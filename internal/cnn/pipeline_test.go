package cnn

import (
	"testing"

	"decamouflage/internal/attack"
	"decamouflage/internal/detect"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// TestAttackFlipsModelAndDecamouflageBlocks is the paper's Figure 2 as an
// integration test: the crafted image classifies as the cover class at
// camera resolution semantics (it *looks* like the cover) yet the model —
// which only ever sees the downscale — classifies it as the attacker's
// target; the steganalysis detector blocks it without any calibration.
func TestAttackFlipsModelAndDecamouflageBlocks(t *testing.T) {
	const (
		srcSize   = 64
		modelSize = 16
	)
	model, err := NewNetwork(Config{InputW: modelSize, InputH: modelSize, Classes: NumShapeClasses, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Fit(ShapeDataset(40, modelSize, 100), TrainOptions{Epochs: 20, LearningRate: 0.005, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	acc, err := model.Accuracy(ShapeDataset(10, modelSize, 900))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("model too weak for the pipeline test: %v", acc)
	}

	scaler, err := scaling.NewScaler(srcSize, srcSize, modelSize, modelSize,
		scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	classify := func(img *imgcore.Image) (int, error) {
		down, err := scaler.Resize(img)
		if err != nil {
			return 0, err
		}
		pred, _, err := model.Predict(down.Quantize8())
		return pred, err
	}

	cover := ShapeImage(ClassCircle, srcSize, 777)
	benignPred, err := classify(cover)
	if err != nil {
		t.Fatal(err)
	}
	if benignPred != ClassCircle {
		t.Skipf("model misclassifies this benign cover (pred %d); seed-dependent", benignPred)
	}

	// Find a target the model classifies as cross (models are imperfect).
	var target *imgcore.Image
	for seed := int64(779); seed < 790; seed++ {
		cand := ShapeImage(ClassCross, modelSize, seed)
		pred, _, err := model.Predict(cand)
		if err != nil {
			t.Fatal(err)
		}
		if pred == ClassCross {
			target = cand
			break
		}
	}
	if target == nil {
		t.Fatal("model never recognizes a cross; training regression")
	}

	res, err := attack.Craft(cover, target, attack.Config{Scaler: scaler, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	attackPred, err := classify(res.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if attackPred != ClassCross {
		t.Errorf("attack did not flip the model: pred %s", ShapeClassName(attackPred))
	}

	// The uncalibrated steganalysis detector blocks the attack.
	det, err := detect.NewDetector(detect.NewStegScorer(steg.Options{}), detect.DefaultCSPThreshold())
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.Detect(res.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Errorf("steganalysis missed the pipeline attack (CSP %v)", v.Score)
	}
	v, err = det.Detect(cover)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Errorf("steganalysis flagged the benign cover (CSP %v)", v.Score)
	}
}
