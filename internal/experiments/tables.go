package experiments

import (
	"context"
	"fmt"

	"decamouflage/internal/attack"
	"decamouflage/internal/detect"
	"decamouflage/internal/eval"
	"decamouflage/internal/report"
	"decamouflage/internal/stats"
	"decamouflage/internal/steg"
)

func statsCells(cs eval.ConfusionStats) []string {
	return []string{
		report.Pct(cs.Accuracy()), report.Pct(cs.Precision()), report.Pct(cs.Recall()),
		report.Pct(cs.FAR()), report.Pct(cs.FRR()),
	}
}

// runT1 prints the paper's Table 1 (CNN input sizes). The table is static,
// so the uniform runner ctx is deliberately unused.
func (r *Runner) runT1(_ context.Context) error {
	tbl := report.NewTable("Input sizes for popular CNN models (paper Table 1)", "Model", "Size (pixels)")
	for _, m := range detect.ModelInputSizes() {
		tbl.AddRow(m.Model, fmt.Sprintf("%d * %d", m.W, m.H))
	}
	return tbl.Render(r.cfg.Out)
}

// whiteBoxTable runs the shared white-box protocol for one method: it
// calibrates MSE and SSIM thresholds on the training corpus and evaluates
// them on the evaluation corpus.
func (r *Runner) whiteBoxTable(ctx context.Context, title string, mkScorer func(detect.Metric) (detect.Scorer, error)) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	tbl := report.NewTable(title, "Metric", "Threshold", "Acc.", "Prec.", "Rec.", "FAR", "FRR")
	for _, m := range []detect.Metric{detect.MSE, detect.SSIM} {
		scorer, err := mkScorer(m)
		if err != nil {
			return err
		}
		wb, _, _, err := r.calibrateScorer(ctx, scorer)
		if err != nil {
			return err
		}
		benign, attacks, err := eval.ScorePair(ctx, scorer, evalCorpus)
		if err != nil {
			return err
		}
		cs := eval.EvaluateThreshold(wb.Threshold, benign, attacks)
		tbl.AddRow(append([]string{m.String(), report.F(wb.Threshold.Value, 2)}, statsCells(cs)...)...)
	}
	return tbl.Render(r.cfg.Out)
}

// blackBoxTable runs the shared black-box protocol: percentile thresholds
// from benign training scores only, evaluated on the evaluation corpus,
// with the benign distribution's mean and std (the paper's last columns).
func (r *Runner) blackBoxTable(ctx context.Context, title string, mkScorer func(detect.Metric) (detect.Scorer, error)) error {
	train, err := r.Train(ctx)
	if err != nil {
		return err
	}
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	tbl := report.NewTable(title, "Metric", "Percentile", "Acc.", "Prec.", "Rec.", "FAR", "FRR", "Mean", "STD")
	for _, m := range []detect.Metric{detect.MSE, detect.SSIM} {
		scorer, err := mkScorer(m)
		if err != nil {
			return err
		}
		trainBenign, _, err := eval.ScorePair(ctx, scorer, train)
		if err != nil {
			return err
		}
		benign, attacks, err := eval.ScorePair(ctx, scorer, evalCorpus)
		if err != nil {
			return err
		}
		mean, std := stats.MeanStd(trainBenign)
		for _, p := range []float64{1, 2, 3} {
			th, err := detect.CalibrateBlackBox(trainBenign, p, m.AttackDirection())
			if err != nil {
				return err
			}
			cs := eval.EvaluateThreshold(th, benign, attacks)
			row := append([]string{m.String(), fmt.Sprintf("%.0f%%", p)}, statsCells(cs)...)
			//declint:ignore floateq the row key is an exact small-integer-valued float
			if p == 2 { // paper prints mean/std on the middle row
				row = append(row, report.F(mean, 2), report.F(std, 2))
			}
			tbl.AddRow(row...)
		}
	}
	return tbl.Render(r.cfg.Out)
}

func (r *Runner) scalingScorer(m detect.Metric) (detect.Scorer, error) {
	s, err := r.Scaler()
	if err != nil {
		return nil, err
	}
	return detect.NewScalingScorer(s, m)
}

func (r *Runner) filteringScorer(m detect.Metric) (detect.Scorer, error) {
	return detect.NewFilteringScorer(2, m)
}

// runT2 reproduces Table 2: scaling detection, white-box.
func (r *Runner) runT2(ctx context.Context) error {
	return r.whiteBoxTable(ctx, "Scaling detection, white-box (paper Table 2)", r.scalingScorer)
}

// runT3 reproduces Table 3: scaling detection, black-box.
func (r *Runner) runT3(ctx context.Context) error {
	return r.blackBoxTable(ctx, "Scaling detection, black-box (paper Table 3)", r.scalingScorer)
}

// runT4 reproduces Table 4: filtering detection, white-box.
func (r *Runner) runT4(ctx context.Context) error {
	return r.whiteBoxTable(ctx, "Filtering detection, white-box (paper Table 4)", r.filteringScorer)
}

// runT5 reproduces Table 5: filtering detection, black-box.
func (r *Runner) runT5(ctx context.Context) error {
	return r.blackBoxTable(ctx, "Filtering detection, black-box (paper Table 5)", r.filteringScorer)
}

// runT6 reproduces Table 6: steganalysis detection with the fixed CSP >= 2
// rule (identical in white-box and black-box settings, as the paper notes).
func (r *Runner) runT6(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	scorer := detect.NewStegScorer(steg.Options{})
	benign, attacks, err := eval.ScorePair(ctx, scorer, evalCorpus)
	if err != nil {
		return err
	}
	cs := eval.EvaluateThreshold(detect.DefaultCSPThreshold(), benign, attacks)
	tbl := report.NewTable("Steganalysis detection (paper Table 6; threshold CSP >= 2)",
		"Metric", "Acc.", "Prec.", "Rec.", "FAR", "FRR")
	tbl.AddRow(append([]string{"CSP"}, statsCells(cs)...)...)
	return tbl.Render(r.cfg.Out)
}

// runT7 reproduces Table 7: run-time overhead of each method/metric.
func (r *Runner) runT7(ctx context.Context) error {
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	n := len(evalCorpus.Benign)
	if n > 50 {
		n = 50
	}
	imgs := evalCorpus.Benign[:n]
	type entry struct {
		method string
		metric string
		scorer detect.Scorer
	}
	var entries []entry
	for _, m := range []detect.Metric{detect.MSE, detect.SSIM} {
		ss, err := r.scalingScorer(m)
		if err != nil {
			return err
		}
		entries = append(entries, entry{"Scaling", m.String(), ss})
	}
	for _, m := range []detect.Metric{detect.MSE, detect.SSIM} {
		fs, err := r.filteringScorer(m)
		if err != nil {
			return err
		}
		entries = append(entries, entry{"Filtering", m.String(), fs})
	}
	entries = append(entries, entry{"Steganalysis", "CSP", detect.NewStegScorer(steg.Options{})})

	tbl := report.NewTable("Run-time overhead (paper Table 7)",
		"Method", "Metric", "Run-time (ms/image)", "Std dev (ms)")
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		rs, err := eval.MeasureRuntime(e.scorer, imgs)
		if err != nil {
			return err
		}
		tbl.AddRow(e.method, e.metric, report.F(rs.MeanMillis, 2), report.F(rs.StdMillis, 2))
	}
	return tbl.Render(r.cfg.Out)
}

// buildEnsembles calibrates and assembles the white-box and black-box
// three-method ensembles used by T8 and T9.
func (r *Runner) buildEnsembles(ctx context.Context) (wbE, bbE *detect.Ensemble, err error) {
	train, err := r.Train(ctx)
	if err != nil {
		return nil, nil, err
	}
	scaler, err := r.Scaler()
	if err != nil {
		return nil, nil, err
	}
	ss, err := detect.NewScalingScorer(scaler, detect.MSE)
	if err != nil {
		return nil, nil, err
	}
	fs, err := detect.NewFilteringScorer(2, detect.SSIM)
	if err != nil {
		return nil, nil, err
	}
	sb, sa, err := eval.ScorePair(ctx, ss, train)
	if err != nil {
		return nil, nil, err
	}
	fb, fa, err := eval.ScorePair(ctx, fs, train)
	if err != nil {
		return nil, nil, err
	}
	swb, err := detect.CalibrateWhiteBox(sb, sa)
	if err != nil {
		return nil, nil, err
	}
	fwb, err := detect.CalibrateWhiteBox(fb, fa)
	if err != nil {
		return nil, nil, err
	}
	wbE, err = detect.NewDefaultEnsemble(detect.DefaultConfig{
		Scaler:             scaler,
		ScalingThreshold:   swb.Threshold,
		FilteringThreshold: fwb.Threshold,
	})
	if err != nil {
		return nil, nil, err
	}
	sbb, err := detect.CalibrateBlackBox(sb, 1, detect.MSE.AttackDirection())
	if err != nil {
		return nil, nil, err
	}
	fbb, err := detect.CalibrateBlackBox(fb, 1, detect.SSIM.AttackDirection())
	if err != nil {
		return nil, nil, err
	}
	bbE, err = detect.NewDefaultEnsemble(detect.DefaultConfig{
		Scaler:             scaler,
		ScalingThreshold:   sbb,
		FilteringThreshold: fbb,
	})
	if err != nil {
		return nil, nil, err
	}
	return wbE, bbE, nil
}

// runT8 reproduces Table 8: the majority-voting ensemble in both settings.
func (r *Runner) runT8(ctx context.Context) error {
	wbE, bbE, err := r.buildEnsembles(ctx)
	if err != nil {
		return err
	}
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	tbl := report.NewTable("Decamouflage ensemble (paper Table 8)",
		"Setting", "Acc.", "Prec.", "Rec.", "FAR", "FRR")
	for _, row := range []struct {
		name string
		e    *detect.Ensemble
	}{
		{"White-box ensemble", wbE},
		{"Black-box ensemble", bbE},
	} {
		cs, err := eval.EvaluateEnsemble(ctx, row.e, evalCorpus)
		if err != nil {
			return err
		}
		tbl.AddRow(append([]string{row.name}, statsCells(cs)...)...)
	}
	return tbl.Render(r.cfg.Out)
}

// runT9 reproduces the paper's Table 9/Appendix-B analysis: attacks that
// escape the ensemble are checked against the attack-success oracle; the
// paper's finding is that escaped attacks have lost their effect.
func (r *Runner) runT9(ctx context.Context) error {
	wbE, _, err := r.buildEnsembles(ctx)
	if err != nil {
		return err
	}
	evalCorpus, err := r.Eval(ctx)
	if err != nil {
		return err
	}
	escaped := 0
	stillEffective := 0
	for i, img := range evalCorpus.Attacks {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := wbE.Detect(ctx, img)
		if err != nil {
			return err
		}
		if v.Attack {
			continue
		}
		escaped++
		rep, err := attack.Success(img, evalCorpus.Targets[i], evalCorpus.Scaler)
		if err != nil {
			return err
		}
		if rep.Effective {
			stillEffective++
		}
		r.printf("  escaped attack %d: downscale SSIM to target %.3f, L-inf %.1f, still effective: %v\n",
			i, rep.SSIM, rep.LInf, rep.Effective)
	}
	tbl := report.NewTable("Escaped-attack efficacy (paper Table 9 substitute oracle)",
		"Attacks", "Escaped ensemble", "Still effective")
	tbl.AddRow(fmt.Sprintf("%d", len(evalCorpus.Attacks)), fmt.Sprintf("%d", escaped), fmt.Sprintf("%d", stillEffective))
	if err := tbl.Render(r.cfg.Out); err != nil {
		return err
	}
	if escaped == 0 {
		r.printf("  (no attacks escaped at this corpus size; the paper's FAR is 0.2%% at N=1000)\n\n")
	}
	return nil
}
