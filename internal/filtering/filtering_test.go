package filtering

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/testutil"
)

func randImage(seed int64, w, h, c int) *imgcore.Image {
	img := imgcore.MustNew(w, h, c)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = rng.Float64() * 255
	}
	return img
}

func TestMinimumKnownValues(t *testing.T) {
	img := imgcore.MustNew(3, 3, 1)
	copy(img.Pix, []float64{
		9, 8, 7,
		6, 5, 4,
		3, 2, 1,
	})
	out, err := Minimum(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 window anchored top-left: out(x,y) = min of (x..x+1, y..y+1).
	want := []float64{
		5, 4, 4,
		2, 1, 1,
		2, 1, 1,
	}
	for i := range want {
		if !testutil.BitEqual(out.Pix[i], want[i]) {
			t.Errorf("min at %d = %v, want %v (got %v)", i, out.Pix[i], want[i], out.Pix)
			break
		}
	}
}

func TestMaximumKnownValues(t *testing.T) {
	img := imgcore.MustNew(3, 3, 1)
	copy(img.Pix, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	out, err := Maximum(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 3x3 centered window with replicate borders.
	if !testutil.BitEqual(out.At(1, 1, 0), 9) {
		t.Errorf("max center = %v, want 9", out.At(1, 1, 0))
	}
	if !testutil.BitEqual(out.At(0, 0, 0), 5) {
		t.Errorf("max corner = %v, want 5", out.At(0, 0, 0))
	}
}

func TestMedianKnownValues(t *testing.T) {
	img := imgcore.MustNew(3, 1, 1)
	copy(img.Pix, []float64{10, 0, 100})
	out, err := Median(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Window at center: {10, 0, 100} -> 10.
	if !testutil.BitEqual(out.At(1, 0, 0), 10) {
		t.Errorf("median = %v, want 10", out.At(1, 0, 0))
	}
}

func TestMedianEvenWindow(t *testing.T) {
	img := imgcore.MustNew(2, 2, 1)
	copy(img.Pix, []float64{1, 2, 3, 4})
	out, err := Median(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Top-left window covers all four: median of even count = (2+3)/2.
	if !testutil.BitEqual(out.At(0, 0, 0), 2.5) {
		t.Errorf("even median = %v, want 2.5", out.At(0, 0, 0))
	}
}

func TestRankFilter(t *testing.T) {
	img := imgcore.MustNew(3, 3, 1)
	for i := range img.Pix {
		img.Pix[i] = float64(i)
	}
	minOut, err := Rank(img, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantMin, err := Minimum(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range minOut.Pix {
		if !testutil.BitEqual(minOut.Pix[i], wantMin.Pix[i]) {
			t.Fatalf("Rank(0) != Minimum at %d", i)
		}
	}
	maxOut, err := Rank(img, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantMax, err := Maximum(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range maxOut.Pix {
		if !testutil.BitEqual(maxOut.Pix[i], wantMax.Pix[i]) {
			t.Fatalf("Rank(8) != Maximum at %d", i)
		}
	}
	if _, err := Rank(img, 3, 9); err == nil {
		t.Error("Rank out-of-range k = nil error")
	}
	if _, err := Rank(img, 3, -1); err == nil {
		t.Error("Rank negative k = nil error")
	}
}

func TestFilterValidation(t *testing.T) {
	img := randImage(1, 4, 4, 1)
	for _, size := range []int{0, 1, -3} {
		if _, err := Minimum(img, size); err == nil {
			t.Errorf("Minimum(size=%d) = nil error", size)
		}
	}
	if _, err := Minimum(&imgcore.Image{}, 2); err == nil {
		t.Error("Minimum(empty) = nil error")
	}
	if _, err := Box(img, 1); err == nil {
		t.Error("Box(size=1) = nil error")
	}
}

// Property: min filter output <= input <= max filter output, everywhere.
func TestMinMaxSandwichProperty(t *testing.T) {
	f := func(seed int64) bool {
		img := randImage(seed, 9, 7, 3)
		lo, err1 := Minimum(img, 2)
		hi, err2 := Maximum(img, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range img.Pix {
			if lo.Pix[i] > img.Pix[i]+1e-12 || hi.Pix[i] < img.Pix[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: erosion is monotone — if a <= b pointwise then min(a) <= min(b).
func TestErosionMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randImage(seed, 8, 8, 1)
		b := a.Clone()
		rng := rand.New(rand.NewSource(seed + 7))
		for i := range b.Pix {
			b.Pix[i] += rng.Float64() * 50 // b >= a
		}
		ea, err1 := Minimum(a, 3)
		eb, err2 := Minimum(b, 3)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range ea.Pix {
			if ea.Pix[i] > eb.Pix[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: all rank filters preserve constant images exactly.
func TestRankFiltersPreserveConstants(t *testing.T) {
	img := imgcore.MustNew(6, 6, 3)
	img.Fill(77)
	for name, fn := range map[string]func(*imgcore.Image, int) (*imgcore.Image, error){
		"min": Minimum, "max": Maximum, "median": Median, "box": Box,
	} {
		out, err := fn(img, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, v := range out.Pix {
			if math.Abs(v-77) > 1e-9 {
				t.Fatalf("%s sample %d = %v", name, i, v)
			}
		}
	}
}

func TestMinimumRemovesIsolatedBrightPixels(t *testing.T) {
	// The filtering-detection insight: attack perturbations are isolated
	// pixels; a min filter wipes isolated bright spikes entirely.
	img := imgcore.MustNew(8, 8, 1)
	img.Fill(50)
	img.Set(3, 3, 0, 255)
	img.Set(6, 2, 0, 255)
	out, err := Minimum(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Pix {
		if !testutil.BitEqual(v, 50) {
			t.Fatalf("bright spike survived min filter at %d: %v", i, v)
		}
	}
}

func TestGaussianSmoothing(t *testing.T) {
	img := imgcore.MustNew(9, 9, 1)
	img.Set(4, 4, 0, 255)
	out, err := Gaussian(img, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(4, 4, 0) >= 255 {
		t.Error("gaussian did not spread the impulse")
	}
	if out.At(4, 4, 0) <= out.At(4, 3, 0) {
		t.Error("gaussian peak not at impulse location")
	}
	// Mass approximately preserved away from borders.
	var sum float64
	for _, v := range out.Pix {
		sum += v
	}
	if math.Abs(sum-255) > 1e-6 {
		t.Errorf("gaussian mass = %v, want 255", sum)
	}
}

func TestGaussianValidation(t *testing.T) {
	img := randImage(1, 4, 4, 1)
	if _, err := Gaussian(img, 0, 1); err == nil {
		t.Error("Gaussian(radius=0) = nil error")
	}
	if _, err := Gaussian(img, 2, 0); err == nil {
		t.Error("Gaussian(sigma=0) = nil error")
	}
	if _, err := Gaussian(&imgcore.Image{}, 2, 1); err == nil {
		t.Error("Gaussian(empty) = nil error")
	}
}

func TestBoxFilterAverages(t *testing.T) {
	img := imgcore.MustNew(2, 2, 1)
	copy(img.Pix, []float64{0, 4, 8, 12})
	out, err := Box(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(out.At(0, 0, 0), 6) {
		t.Errorf("box(0,0) = %v, want 6", out.At(0, 0, 0))
	}
}

func TestFiltersDoNotMutateInput(t *testing.T) {
	img := randImage(5, 6, 6, 3)
	snapshot := append([]float64(nil), img.Pix...)
	if _, err := Minimum(img, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Gaussian(img, 2, 1); err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		if !testutil.BitEqual(img.Pix[i], snapshot[i]) {
			t.Fatal("filter mutated its input")
		}
	}
}

func BenchmarkMinimum2x2_256(b *testing.B) {
	img := randImage(1, 256, 256, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimum(img, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMedian3x3_256(b *testing.B) {
	img := randImage(1, 256, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Median(img, 3); err != nil {
			b.Fatal(err)
		}
	}
}
