package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one testdata mini-module and returns its findings
// formatted as "relpath:line check", the form the golden tables pin.
func loadFixture(t *testing.T, name string, cfg Config) []string {
	t.Helper()
	root := filepath.Join("testdata", name)
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	findings, err := Run(pkgs, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", root, err)
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(findings))
	for _, f := range findings {
		rel, err := filepath.Rel(abs, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("%s:%d %s", filepath.ToSlash(rel), f.Pos.Line, f.Check))
	}
	return out
}

// TestGoldenFindings drives every fixture module through the default
// config and pins the exact finding set: violating files are reported at
// the right line with the right check name, clean and suppressed variants
// stay silent, exempt packages and test files are skipped.
func TestGoldenFindings(t *testing.T) {
	cases := []struct {
		fixture string
		want    []string
	}{
		{
			fixture: "norawgo",
			want: []string{
				"internal/parallel/parallel.go:12 golife", // Do: wg-joined, but no spawns directive
				"internal/report/suppressed.go:8 golife",  // Serve: opaque callee, no directive...
				"internal/report/suppressed.go:8 golife",  // ...and no provable termination
				"internal/report/suppressed.go:13 golife", // ServeTrailing: same pair
				"internal/report/suppressed.go:13 golife",
				"internal/scaling/pool.go:9 noraw-go",  // sync.WaitGroup pool
				"internal/scaling/pool.go:13 golife",   // Sum: joined fan-out, no spawns directive
				"internal/scaling/pool.go:13 noraw-go", // raw go statement
				// internal/parallel is exempt from noraw-go but not from golife;
				// the noraw-go suppressions in suppressed.go silence only that
				// check. pool_test.go is a test file.
			},
		},
		{
			fixture: "determinism",
			want: []string{
				"internal/scaling/bad.go:6 determinism",  // math/rand import
				"internal/scaling/bad.go:12 determinism", // time.Now
				"internal/scaling/bad.go:19 determinism", // map-ordered append
				// SumValues (pure accumulation), sorted.go (annotated),
				// bad_test.go (test file), eval/clock.go (unscoped) are silent.
			},
		},
		{
			fixture: "floateq",
			want: []string{
				"internal/metrics/cmp.go:6 floateq",      // float64 ==
				"internal/metrics/cmp.go:11 floateq",     // float32 !=
				"internal/metrics/cmp_test.go:8 floateq", // tests are covered
				// ZeroGuard is annotated; testutil is allowlisted; int == is fine.
			},
		},
		{
			fixture: "naninput",
			want: []string{
				"internal/metrics/api.go:8 naninput",  // pointer tensor param
				"internal/metrics/api.go:13 naninput", // slice-of-tensor param
				// Guarded calls Validate, Marked carries nan-ok, helper is
				// unexported, Scalar has no tensor, attack is unscoped.
			},
		},
		{
			fixture: "errdrop",
			want: []string{
				"internal/report/drop.go:17 errdrop", // _ = mayFail()
				"internal/report/drop.go:18 errdrop", // _, _ = twoVals()
				// line 20 is annotated; Sprintf returns no error; tests exempt.
			},
		},
		{
			fixture: "obsonly",
			want: []string{
				"internal/steg/prof.go:6 obsonly", // expvar in a kernel package
				"internal/steg/prof.go:7 obsonly", // runtime/pprof likewise
				// internal/obs and cmd/tool are exempt; suppressed.go is
				// annotated. The obs fixture's tag-gated const pair also pins
				// the loader's build-constraint skip: parsing both variants
				// would fail type-checking with a redeclaration.
			},
		},
		{
			fixture: "parsafe",
			want: []string{
				"internal/filtering/par.go:16 parsafe", // out[0] from every chunk
				"internal/filtering/par.go:37 parsafe", // captured scalar accumulation
				"internal/filtering/par.go:72 parsafe", // captured counter in a Do task
				// Scale (derived indices), Bands (chunk-owned alias), the
				// task-indexed and constant-index Do tasks, the substrate
				// package itself, and par_test.go are all silent.
			},
		},
		{
			fixture: "hotalloc",
			want: []string{
				"internal/filtering/hot.go:21 hotalloc",  // make in hot Window
				"internal/filtering/hot.go:36 hotalloc",  // closure in hot Apply
				"internal/filtering/hot.go:46 hotalloc",  // boxing in hot Report
				"internal/filtering/u8.go:26 hotalloc",   // per-call histogram in hot HistMedianU8
				"internal/filtering/u8.go:46 hotalloc",   // append growth in hot CollectRunsU8
				"internal/kernels/kernels.go:7 hotalloc", // reachable from hot Sweep
				// Scratch is suppressed with a reason; Clean is allocation-free;
				// Cold is unmarked; SlideMinU8 reuses the caller's wedge.
			},
		},
		{
			fixture: "detprop",
			want: []string{
				"internal/scaling/resize.go:14 detprop", // two hops to time.Now
				"internal/scaling/resize.go:23 detprop", // one hop to math/rand
				// Traced reaches the clock only through the exempt obs barrier.
			},
		},
		{
			fixture: "ctxflow",
			want: []string{
				"internal/detect/run.go:22 ctxflow", // step never uses ctx
				"internal/detect/run.go:28 ctxflow", // unexported mint of Background
				"internal/detect/run.go:36 ctxflow", // fork re-mints despite receiving ctx
				// Run is an exported root; scan threads; skip names its param _.
			},
		},
		{
			fixture: "poollife",
			want: []string{
				"internal/bufpool/pool.go:35 poollife",   // Leak: never released
				"internal/bufpool/pool.go:42 poollife",   // EarlyLeak: error path leaks
				"internal/bufpool/pool.go:52 poollife",   // Double: second transfers release
				"internal/bufpool/pool.go:59 poollife",   // DoubleDirect: second Put
				"internal/bufpool/pool.go:67 poollife",   // DeferredDouble: Put under pending defer
				"internal/bufpool/pool.go:74 poollife",   // UseAfter: read after Put
				"internal/bufpool/pool.go:82 poollife",   // Stash: escape into package state
				"internal/bufpool/pool.go:88 poollife",   // Overwrite: rebind while live
				"internal/bufpool/pool.go:96 poollife",   // LoopFree: release inside loop body
				"internal/bufpool/pool.go:104 poollife",  // Discard: owned result dropped
				"internal/bufpool/pool.go:111 poollife",  // fabricate: owns claim unbacked
				"internal/bufpool/pool.go:116 poollife",  // vanish: transfers claim unbacked
				"internal/bufpool/pool.go:120 poollife",  // overclaim: result index out of range
				"internal/parallel/spawn.go:13 golife",   // Spawn: goroutine, no spawns directive
				"internal/parallel/spawn.go:13 poollife", // Spawn: goroutine capture
				// Clean, NilGuarded, and ErrPath release on every path: silent.
			},
		},
		{
			fixture: "memopure",
			want: []string{
				"internal/detect/stages.go:62 memopure",    // Sum: captured write
				"internal/detect/stages.go:74 memopure",    // Count: package-level write
				"internal/detect/stages.go:84 determinism", // Stamp: time.Now in a kernel pkg...
				"internal/detect/stages.go:84 memopure",    // ...and inside a stage closure
				"internal/detect/stages.go:93 detprop",     // Tag: kernel chain to the clock...
				"internal/detect/stages.go:93 memopure",    // ...reached from a stage closure
				"internal/detect/stages.go:102 memopure",   // Bump: reaches a global write
				// Gray is pure; obs.StartStage is behind the exempt barrier.
			},
		},
		{
			fixture: "obscover",
			want: []string{
				"internal/detect/stages.go:36 obscover", // bare: NewLRU with nil stats
				"internal/detect/stages.go:52 obscover", // Spectrum: no span at all
				"internal/detect/stages.go:60 obscover", // Blur: span with nil histogram
				// Gray and wired are fully instrumented: silent.
			},
		},
		{
			fixture: "eventspan",
			want: []string{
				"internal/detect/emit.go:17 obscover", // Untraced: no span at all
				"internal/detect/emit.go:23 obscover", // Late: span opened after the event
				// Traced is covered; Waived is annotated; the obs package's
				// own watchdog emitter is exempt.
			},
		},
		{
			fixture: "lockorder",
			want: []string{
				"internal/store/audit.go:31 lockorder", // UnderB: undeclared muB -> muA edge
				"internal/store/audit.go:37 lockorder", // Idle: unbacked locks-after claim
				"internal/store/store.go:28 lockorder", // BA: closes the muA/muB cycle
				"internal/store/store.go:51 lockorder", // Grow -> Size reacquires mu
				"internal/store/store.go:58 lockorder", // Nap: time.Sleep under mu
				"internal/store/store.go:63 lockorder", // Drop: unlock without a lock
				// AB alone is clean; UnderA's cross-function edge is declared
				// with locks-after on lockB.
			},
		},
		{
			fixture: "golife",
			want: []string{
				"internal/parallel/life.go:12 golife", // Leaky: no termination signal
				"internal/parallel/life.go:29 golife", // StartPump: stop closed, never joined
				"internal/parallel/life.go:47 golife", // Fire: no spawns directive
				"internal/parallel/life.go:55 golife", // Calm: unbacked spawns claim
				// StartTicker/Stop is the clean stop+done join shape: silent.
			},
		},
		{
			fixture: "chandisc",
			want: []string{
				"internal/pipe/pipe.go:21 chandisc", // Push: ctx-path send, no Done guard
				"internal/pipe/pipe.go:44 chandisc", // Poll: time.After in a loop
				"internal/pipe/pipe.go:54 chandisc", // Flush: send after close
				"internal/pipe/pipe.go:60 chandisc", // Feed: magic capacity 64
				// PushGuarded selects on ctx.Done; FeedSized names its capacity.
			},
		},
		{
			fixture: "deadline",
			want: []string{
				"internal/obs/serve.go:13 deadline", // Wait: raw channel receive
				"internal/obs/serve.go:18 deadline", // Settle: direct time.Sleep
				"internal/obs/serve.go:23 deadline", // Converge: Sleep via helper chain
				// WaitCtx threads ctx; the unexported helpers are not roots.
			},
		},
		{
			fixture: "suppress",
			want: []string{
				"internal/scaling/bad.go:7 declint",  // directive names no check
				"internal/scaling/bad.go:8 floateq",  // ...so nothing is silenced
				"internal/scaling/bad.go:13 declint", // unknown check name
				"internal/scaling/bad.go:14 floateq",
				"internal/scaling/bad.go:20 declint", // missing reason
				"internal/scaling/bad.go:21 floateq",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			got := loadFixture(t, tc.fixture, DefaultConfig())
			if strings.Join(got, "\n") != strings.Join(tc.want, "\n") {
				t.Errorf("findings mismatch\ngot:\n  %s\nwant:\n  %s",
					strings.Join(got, "\n  "), strings.Join(tc.want, "\n  "))
			}
		})
	}
}

// TestCheckSubset: restricting cfg.Checks runs only the named checks,
// while suppression hygiene (check "declint") is always enforced.
func TestCheckSubset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checks = []string{"errdrop"}
	got := loadFixture(t, "suppress", cfg)
	want := []string{
		"internal/scaling/bad.go:7 declint",
		"internal/scaling/bad.go:13 declint",
		"internal/scaling/bad.go:20 declint",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUnknownCheckRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checks = []string{"nosuchcheck"}
	pkgs, err := LoadModule(filepath.Join("testdata", "errdrop"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pkgs, cfg); err == nil {
		t.Fatal("Run accepted an unknown check name")
	}
}

func TestRegistry(t *testing.T) {
	want := []string{
		"noraw-go", "determinism", "floateq", "naninput", "errdrop", "obsonly",
		"parsafe", "hotalloc", "detprop", "ctxflow",
		"poollife", "memopure", "obscover",
		"lockorder", "golife", "chandisc", "deadline",
	}
	checks := Checks()
	if len(checks) != len(want) {
		t.Fatalf("registry has %d checks, want %d", len(checks), len(want))
	}
	for i, c := range checks {
		if c.Name != want[i] {
			t.Errorf("check %d = %s, want %s", i, c.Name, want[i])
		}
		if c.Doc == "" {
			t.Errorf("check %s has no doc", c.Name)
		}
		if !KnownCheck(c.Name) {
			t.Errorf("KnownCheck(%s) = false", c.Name)
		}
	}
	if KnownCheck("bogus") {
		t.Error("KnownCheck(bogus) = true")
	}
}
