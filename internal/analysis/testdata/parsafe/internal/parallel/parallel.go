// Fixture stand-in for the real substrate: same signatures and import-path
// suffix, so parsafe scopes and resolves call sites exactly as it does on
// the module, without needing goroutines in a fixture.
package parallel

import "context"

// Option mirrors the real substrate's options.
type Option struct{}

// For runs fn serially over [0, n).
func For(ctx context.Context, n int, fn func(lo, hi int) error, opts ...Option) error {
	_ = ctx
	return fn(0, n)
}

// Do runs each task once.
func Do(ctx context.Context, tasks []func() error, opts ...Option) error {
	_ = ctx
	for _, t := range tasks {
		if err := t(); err != nil {
			return err
		}
	}
	return nil
}
