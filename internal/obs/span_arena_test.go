package obs

import (
	"context"
	"fmt"
	"testing"
)

// TestSpanArenaRecycling pins the ownership transfer on Offer: the trace
// detaches, the retained copy survives, and a recycled arena hands out
// clean spans with no attrs or children leaking from the previous trace.
func TestSpanArenaRecycling(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	s := NewTailSampler(8, 0)

	ctx, tr := WithTrace(context.Background(), "req")
	_, sp := StartSpan(ctx, "child")
	sp.AttrString("k", "v")
	sp.End()
	tr.End()
	id := tr.ID()

	if _, kept := s.Offer(tr, nil); !kept {
		t.Fatal("first trace not kept")
	}
	if got := tr.ID(); got != "" {
		t.Errorf("released trace still has ID %q", got)
	}
	rt, ok := s.Find(id)
	if !ok {
		t.Fatalf("retained trace %q not found", id)
	}
	if len(rt.Spans) != 2 || rt.Spans[1].Attrs["k"] != "v" {
		t.Errorf("retained copy lost data: %+v", rt.Spans)
	}

	// A fresh trace (likely on the recycled arena) must start clean.
	ctx2, tr2 := WithTrace(context.Background(), "req2")
	_, sp2 := StartSpan(ctx2, "child2")
	sp2.End()
	tr2.End()
	spans := FlattenSpans(tr2.Root())
	if len(spans) != 2 {
		t.Fatalf("recycled trace has %d spans, want 2: %+v", len(spans), spans)
	}
	for _, sd := range spans {
		if len(sd.Attrs) != 0 {
			t.Errorf("recycled span %q carries stale attrs %v", sd.Name, sd.Attrs)
		}
	}
	if spans[0].Name != "req2" || spans[1].Name != "child2" {
		t.Errorf("recycled trace names wrong: %+v", spans)
	}
	s.Offer(tr2, nil)
}

// TestSpanArenaOverflow drives a trace past the fixed arena size: spans
// beyond the block spill to the heap but still join the tree, and
// releasing the trace afterwards is safe.
func TestSpanArenaOverflow(t *testing.T) {
	if compiledOut {
		t.Skip("observability compiled out (noobs)")
	}
	ctx, tr := WithTrace(context.Background(), "wide")
	const n = arenaSpans + 8
	for i := 0; i < n; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("c%d", i))
		sp.End()
	}
	tr.End()
	spans := FlattenSpans(tr.Root())
	if len(spans) != n+1 {
		t.Fatalf("overflow trace has %d spans, want %d", len(spans), n+1)
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("c%d", i); spans[i+1].Name != want {
			t.Fatalf("span %d named %q, want %q", i+1, spans[i+1].Name, want)
		}
	}
	NewTailSampler(4, 0).Offer(tr, nil)
	if tr.Root() != nil {
		t.Error("overflow trace not released")
	}
}
