// Package cache provides the bounded get-or-build LRU shared by the
// repository's memoized construction paths (fourier transform plans,
// scaling coefficient operators, metrics Gaussian windows). One
// implementation means one concurrency story — mutex-guarded map with a
// logical access clock, build outside the lock, lost-race keeps the
// incumbent — and one place where obs cache statistics are recorded.
package cache

import (
	"math"
	"sync"

	"decamouflage/internal/obs"
)

type entry[V any] struct {
	val  V
	used uint64 // logical access clock, for LRU eviction
}

// LRU is a bounded least-recently-used memo keyed by K. The zero value is
// not usable; construct with NewLRU. Values are shared between callers
// and must be treated as immutable; eviction only drops the cache's
// reference, so values already held remain valid.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	m     map[K]*entry[V]
	clock uint64
	stats *obs.CacheStats
}

// NewLRU returns a cache bounded to capacity entries. stats may be nil;
// when set, hits, misses, evictions and population are recorded on it.
func NewLRU[K comparable, V any](capacity int, stats *obs.CacheStats) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{cap: capacity, m: make(map[K]*entry[V]), stats: stats}
}

// GetOrBuild returns the cached value for key, invoking build on first
// use. build runs OUTSIDE the cache lock: construction is the expensive
// part, holding the lock across it would serialize unrelated keys, and
// build may reenter the same cache (fourier's Bluestein plans build their
// radix-2 sub-plans through GetOrBuild). Concurrent callers may therefore
// briefly build the same value twice; whichever insert loses the race
// adopts the incumbent, so all callers share one instance. A build error
// is returned as-is and caches nothing.
func (c *LRU[K, V]) GetOrBuild(key K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.clock++
		e.used = c.clock
		v := e.val
		c.mu.Unlock()
		c.stats.Hit()
		return v, nil
	}
	c.mu.Unlock()
	c.stats.Miss()

	v, err := build()
	if err != nil {
		var zero V
		return zero, err
	}

	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		// Lost the build race; keep the incumbent.
		c.clock++
		e.used = c.clock
		v := e.val
		c.mu.Unlock()
		return v, nil
	}
	c.clock++
	c.m[key] = &entry[V]{val: v, used: c.clock}
	evicted := 0
	for len(c.m) > c.cap {
		var oldest K
		var oldestUsed uint64 = math.MaxUint64
		for k, e := range c.m {
			if e.used < oldestUsed {
				oldest, oldestUsed = k, e.used
			}
		}
		delete(c.m, oldest)
		evicted++
	}
	size := len(c.m)
	c.mu.Unlock()
	if evicted > 0 {
		c.stats.Evict(evicted)
	}
	c.stats.Resize(size)
	return v, nil
}

// Len reports the current population.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset empties the cache (tests).
func (c *LRU[K, V]) Reset() {
	c.mu.Lock()
	c.m = make(map[K]*entry[V])
	c.clock = 0
	size := len(c.m)
	c.mu.Unlock()
	c.stats.Resize(size)
}
