// Package metrics is a fixture: exact float comparisons in non-test code.
package metrics

// Same64 compares float64 exactly: flagged.
func Same64(a, b float64) bool {
	return a == b
}

// Differ32 compares float32 exactly: flagged.
func Differ32(x, y float32) bool {
	return x != y
}

// ZeroGuard is an annotated, intentional exact comparison.
func ZeroGuard(v float64) bool {
	//declint:ignore floateq exact zero is the documented sentinel
	return v == 0
}

// IntsAreFine never trips the check.
func IntsAreFine(i, j int) bool { return i == j }
