package main

import (
	"os"
	"path/filepath"
	"testing"

	"decamouflage/internal/imgcore"
)

func TestRunDemo(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "attack.png")
	err := run([]string{"-demo", "-dst", "16x16", "-out", out, "-save-intermediate", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	img, err := imgcore.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 64 || img.H != 64 {
		t.Errorf("attack geometry %v, want 64x64 (4x dst)", img)
	}
	for _, suffix := range []string{".source.png", ".target.png", ".downscaled.png"} {
		if _, err := os.Stat(out + suffix); err != nil {
			t.Errorf("missing intermediate %s: %v", suffix, err)
		}
	}
}

func TestRunWithFiles(t *testing.T) {
	dir := t.TempDir()
	// Build a source and an over-sized target (exercises target resize).
	src := imgcore.MustNew(48, 48, 3)
	for i := range src.Pix {
		src.Pix[i] = float64((i * 13) % 256)
	}
	tgt := imgcore.MustNew(30, 30, 3)
	for i := range tgt.Pix {
		tgt.Pix[i] = float64((i * 7) % 256)
	}
	srcPath := filepath.Join(dir, "src.png")
	tgtPath := filepath.Join(dir, "tgt.png")
	if err := src.SavePNG(srcPath); err != nil {
		t.Fatal(err)
	}
	if err := tgt.SavePNG(tgtPath); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "a.png")
	err := run([]string{"-source", srcPath, "-target", tgtPath, "-dst", "12x12", "-eps", "4", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no inputs accepted")
	}
	if err := run([]string{"-demo", "-dst", "bogus"}); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{"-demo", "-alg", "bogus"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-source", "missing.png", "-target", "missing2.png"}); err == nil {
		t.Error("missing files accepted")
	}
}
