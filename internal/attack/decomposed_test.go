package attack

import (
	"math"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/scaling"
	"decamouflage/internal/testutil"
)

func TestCraftDecomposedValidation(t *testing.T) {
	s := mustScaler(t, 32, 32, 8, 8, scaling.Bilinear)
	src := smoothImage(1, 32, 32, 1)
	tgt := smoothImage(2, 8, 8, 1)
	if _, err := CraftDecomposed(src, tgt, Config{}); err == nil {
		t.Error("missing scaler accepted")
	}
	if _, err := CraftDecomposed(smoothImage(1, 16, 32, 1), tgt, Config{Scaler: s}); err == nil {
		t.Error("wrong source size accepted")
	}
	if _, err := CraftDecomposed(src, smoothImage(2, 9, 8, 1), Config{Scaler: s}); err == nil {
		t.Error("wrong target size accepted")
	}
	if _, err := CraftDecomposed(src, smoothImage(2, 8, 8, 3), Config{Scaler: s}); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := CraftDecomposed(&imgcore.Image{}, tgt, Config{Scaler: s}); err == nil {
		t.Error("empty source accepted")
	}
}

func TestCraftDecomposedHitsTarget(t *testing.T) {
	for _, alg := range []scaling.Algorithm{scaling.Nearest, scaling.Bilinear, scaling.Bicubic} {
		t.Run(alg.String(), func(t *testing.T) {
			s := mustScaler(t, 64, 64, 16, 16, alg)
			src := smoothImage(21, 64, 64, 3)
			tgt := smoothImage(22, 16, 16, 3)
			res, err := CraftDecomposed(src, tgt, Config{Scaler: s, Eps: 3})
			if err != nil {
				t.Fatal(err)
			}
			if res.MaxViolation > 3.2 {
				t.Errorf("decomposed L∞ = %v, want <= eps (+tol)", res.MaxViolation)
			}
			lo, hi := res.Attack.MinMax()
			if lo < 0 || hi > 255 {
				t.Errorf("attack image range [%v,%v]", lo, hi)
			}
		})
	}
}

func TestDecomposedAgreesWithJoint(t *testing.T) {
	s := mustScaler(t, 64, 64, 16, 16, scaling.Bilinear)
	src := smoothImage(23, 64, 64, 1)
	tgt := smoothImage(24, 16, 16, 1)
	joint, err := Craft(src, tgt, Config{Scaler: s, Eps: 3})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := CraftDecomposed(src, tgt, Config{Scaler: s, Eps: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Both must be effective attacks; the joint solve should perturb no
	// more than ~the decomposed one (it optimizes jointly).
	if joint.MaxViolation > 3.1 || dec.MaxViolation > 3.2 {
		t.Errorf("violations: joint %v, decomposed %v", joint.MaxViolation, dec.MaxViolation)
	}
	if joint.PerturbationMSE > 3*dec.PerturbationMSE+100 {
		t.Errorf("joint perturbation %v much larger than decomposed %v",
			joint.PerturbationMSE, dec.PerturbationMSE)
	}
	// Both stay visually close to the source.
	for name, img := range map[string]*imgcore.Image{"joint": joint.Attack, "decomposed": dec.Attack} {
		ssim, err := metrics.SSIM(img, src)
		if err != nil {
			t.Fatal(err)
		}
		if ssim < 0.4 {
			t.Errorf("%s attack too visible: SSIM %v", name, ssim)
		}
	}
}

func TestDecomposedDetectableLikeJoint(t *testing.T) {
	// The detectors must be solver-agnostic: a decomposed-solver attack
	// leaves the same sparse comb, so its down/up residual is comparable.
	s := mustScaler(t, 64, 64, 16, 16, scaling.Bilinear)
	src := smoothImage(25, 64, 64, 1)
	tgt := smoothImage(26, 16, 16, 1)
	joint, err := Craft(src, tgt, Config{Scaler: s, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := CraftDecomposed(src, tgt, Config{Scaler: s, Eps: 2})
	if err != nil {
		t.Fatal(err)
	}
	score := func(img *imgcore.Image) float64 {
		t.Helper()
		down, err := s.Resize(img)
		if err != nil {
			t.Fatal(err)
		}
		up, err := scaling.Resize(down, 64, 64, s.Options())
		if err != nil {
			t.Fatal(err)
		}
		m, err := metrics.MSE(img, up)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	benignScore := score(src)
	jointScore := score(joint.Attack)
	decScore := score(dec.Attack)
	if jointScore < 3*benignScore || decScore < 3*benignScore {
		t.Errorf("attack scores (joint %v, dec %v) not well above benign %v",
			jointScore, decScore, benignScore)
	}
	if ratio := decScore / jointScore; ratio < 0.2 || ratio > 5 {
		t.Errorf("solver scores diverge: joint %v vs decomposed %v", jointScore, decScore)
	}
}

func TestDecomposedQuantizedIntegral(t *testing.T) {
	s := mustScaler(t, 32, 32, 8, 8, scaling.Bilinear)
	res, err := CraftDecomposed(smoothImage(27, 32, 32, 1), smoothImage(28, 8, 8, 1), Config{Scaler: s, Eps: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Attack.Pix {
		if !testutil.BitEqual(v, math.Trunc(v)) {
			t.Fatalf("pixel %d = %v not integral", i, v)
		}
	}
}

func BenchmarkCraftDecomposed128to32(b *testing.B) {
	s, err := scaling.NewScaler(128, 128, 32, 32, scaling.Options{Algorithm: scaling.Bilinear})
	if err != nil {
		b.Fatal(err)
	}
	src := smoothImage(1, 128, 128, 3)
	tgt := smoothImage(2, 32, 32, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CraftDecomposed(src, tgt, Config{Scaler: s, Eps: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
