//go:build !noobs

package obs

const compiledOut = false
