module decamouflage

go 1.22
