package cnn

import (
	"encoding/json"
	"fmt"
	"os"
)

// snapshot is the JSON wire format of a trained network.
type snapshot struct {
	Config  Config      `json:"config"`
	Weights [][]float64 `json:"weights"` // conv1 w, conv1 b, conv2 w, conv2 b, dense w, dense b
}

// paramSlices returns the network's parameter tensors in a fixed order.
func (n *Network) paramSlices() [][]float64 {
	c1 := n.layers[0].(*conv2D)
	c2 := n.layers[3].(*conv2D)
	d := n.layers[6].(*dense)
	return [][]float64{c1.weights, c1.bias, c2.weights, c2.bias, d.weights, d.bias}
}

// MarshalJSON serializes the configuration and trained weights.
func (n *Network) MarshalJSON() ([]byte, error) {
	s := snapshot{Config: n.cfg}
	for _, p := range n.paramSlices() {
		s.Weights = append(s.Weights, append([]float64(nil), p...))
	}
	return json.Marshal(s)
}

// LoadNetwork reconstructs a trained network from MarshalJSON output.
func LoadNetwork(data []byte) (*Network, error) {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("cnn: parse snapshot: %w", err)
	}
	n, err := NewNetwork(s.Config)
	if err != nil {
		return nil, err
	}
	params := n.paramSlices()
	if len(s.Weights) != len(params) {
		return nil, fmt.Errorf("cnn: snapshot has %d tensors, want %d", len(s.Weights), len(params))
	}
	for i, p := range params {
		if len(s.Weights[i]) != len(p) {
			return nil, fmt.Errorf("cnn: tensor %d has %d values, want %d", i, len(s.Weights[i]), len(p))
		}
		copy(p, s.Weights[i])
	}
	return n, nil
}

// Save writes the trained network to a JSON file.
func (n *Network) Save(path string) error {
	data, err := n.MarshalJSON()
	if err != nil {
		return fmt.Errorf("cnn: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("cnn: save: %w", err)
	}
	return nil
}

// Load reads a trained network from a JSON file.
func Load(path string) (*Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cnn: load: %w", err)
	}
	return LoadNetwork(data)
}
