// 2-D transform plans. A Plan2D bundles the row- and column-direction 1-D
// plans of a forward 2-D DFT for one geometry, so callers that transform
// many same-sized signals (the detection pipeline scoring a batch of
// images) resolve the plan cache once per geometry instead of twice per
// image. Executing through a Plan2D performs exactly the arithmetic of
// Transform2D/CenteredSpectrum — the plans are the same cached objects
// PlanFor returns — so planned 2-D output is bit-identical to the
// unplanned entry points.
package fourier

import (
	"context"
	"fmt"

	"decamouflage/internal/parallel"
)

// Plan2D is an immutable forward 2-D DFT descriptor for one (W, H)
// geometry. It is safe for concurrent use, like the 1-D plans it bundles.
type Plan2D struct {
	row *Plan // length W, forward
	col *Plan // length H, forward
}

// Plan2DFor returns the forward 2-D plan for a w×h signal, drawing both
// axis plans from the shared plan cache (PlanFor).
func Plan2DFor(w, h int) (*Plan2D, error) {
	row, err := PlanFor(w, false)
	if err != nil {
		return nil, err
	}
	col, err := PlanFor(h, false)
	if err != nil {
		return nil, err
	}
	return &Plan2D{row: row, col: col}, nil
}

// Size returns the geometry the plan was built for.
func (p *Plan2D) Size() (w, h int) { return p.row.N(), p.col.N() }

// CenteredSpectrumWith is CenteredSpectrum executing through a prepared
// plan and honouring ctx cancellation in its parallel passes. A nil plan
// resolves one from the shared cache; a non-nil plan must match (w, h).
// Output is bit-identical to CenteredSpectrum for every input.
func CenteredSpectrumWith(ctx context.Context, p *Plan2D, data []float64, w, h int) ([]float64, error) {
	m, err := FromReal(data, w, h)
	if err != nil {
		return nil, err
	}
	if p == nil {
		if p, err = Plan2DFor(w, h); err != nil {
			return nil, err
		}
	} else if pw, ph := p.Size(); pw != w || ph != h {
		return nil, fmt.Errorf("fourier: plan geometry %dx%d does not match signal %dx%d", pw, ph, w, h)
	}
	spec, err := transform2DWith(ctx, m, p.row, p.col)
	if err != nil {
		return nil, err
	}
	return centeredFromSpectrum(spec), nil
}

// centeredFromSpectrum runs the shift/log-magnitude/normalize tail shared
// by CenteredSpectrum and CenteredSpectrumWith.
func centeredFromSpectrum(spec *Matrix) []float64 {
	logMag := LogMagnitude(Shift(spec))
	var mx float64
	for _, v := range logMag {
		if v > mx {
			mx = v
		}
	}
	if mx > 0 {
		inv := 1 / mx
		for i := range logMag {
			logMag[i] *= inv
		}
	}
	return logMag
}

// transform2DWith is transform2D with both axis plans supplied by the
// caller; transform2D resolves them from the cache and delegates here.
func transform2DWith(ctx context.Context, m *Matrix, rowPlan, colPlan *Plan, opts ...parallel.Option) (*Matrix, error) {
	out := &Matrix{W: m.W, H: m.H, Data: append([]complex128(nil), m.Data...)}
	// Rows: each chunk transforms a disjoint band of rows in place.
	rowOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(m.W, minTransformWork)),
	}, opts...)
	err := parallel.For(ctx, m.H, func(lo, hi int) error {
		for y := lo; y < hi; y++ {
			if err := rowPlan.Transform(out.Data[y*m.W : (y+1)*m.W]); err != nil {
				return err
			}
		}
		return nil
	}, rowOpts...)
	if err != nil {
		return nil, err
	}
	// Columns: each chunk gathers, transforms and scatters a disjoint band
	// of columns through its own pooled scratch buffer.
	colOpts := append([]parallel.Option{
		parallel.Grain(parallel.GrainForWidth(m.H, minTransformWork)),
	}, opts...)
	err = parallel.For(ctx, m.W, func(lo, hi int) error {
		cp := colScratch.Get().(*[]complex128)
		defer colScratch.Put(cp)
		col := *cp
		if cap(col) < m.H {
			col = make([]complex128, m.H)
			*cp = col
		}
		col = col[:m.H]
		for x := lo; x < hi; x++ {
			for y := 0; y < m.H; y++ {
				col[y] = out.Data[y*m.W+x]
			}
			if err := colPlan.Transform(col); err != nil {
				return err
			}
			for y := 0; y < m.H; y++ {
				out.Data[y*m.W+x] = col[y]
			}
		}
		return nil
	}, colOpts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}
