package detect

import (
	"context"
	"testing"

	"decamouflage/internal/obs"
)

// benchDetect measures one full three-method ensemble detection. The
// Disabled/Instrumented pair is the observability overhead gate: CI runs
// BenchmarkDetectDisabled against a -tags noobs baseline (instrumentation
// compiled out) via cmd/benchguard and fails the build when the
// disabled-path cost exceeds 2%.
func benchDetect(b *testing.B) {
	e := obsTestEnsemble(b)
	img := obsTestImage(b, 32, 32)
	ctx := context.Background()
	// Warm the coefficient and plan caches so the loop measures the
	// steady-state hot path, not one-time setup.
	if _, err := e.Detect(ctx, img); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Detect(ctx, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectDisabled(b *testing.B) {
	obs.Disable()
	benchDetect(b)
}

func BenchmarkDetectInstrumented(b *testing.B) {
	obs.Enable()
	b.Cleanup(obs.Disable)
	benchDetect(b)
}
