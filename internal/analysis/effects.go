package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// hotMarker tags a function whose body and whole static call closure must
// stay allocation-free; see checkHotAlloc for the contract.
const hotMarker = "//declint:hot"

// Ownership directives for poollife. ownsMarker on a function declares that
// the caller receives custody of one or more pool-borrowed results and must
// release them; transfersMarker declares that the function takes custody of
// a parameter (or its receiver) away from the caller. Both claims are
// verified at the callee — see checkPoolLife.
//
//	//declint:owns [result k[,k...]] [explanation]     (default: result 0)
//	//declint:transfers [param k[,k...]|receiver] [explanation]  (default: param 0)
const (
	ownsMarker      = "//declint:owns"
	transfersMarker = "//declint:transfers"
)

// Concurrency-protocol directives. spawnsMarker on a function declares that
// its go statements are sanctioned topology (golife still verifies each
// goroutine's termination signal); locksAfterMarker on a function declares
// that the mutexes it acquires are ordered after the named mutex in the
// module lock order, sanctioning that nested-acquire edge. Both claims are
// verified: a spawns directive on a function with no go statement and a
// locks-after naming an edge the lock graph never establishes are findings.
//
//	//declint:spawns <reason>
//	//declint:locks-after <pkg.Type.field> [explanation]
const (
	spawnsMarker     = "//declint:spawns"
	locksAfterMarker = "//declint:locks-after"
)

// Site is one effect occurrence: an allocation, a forbidden-source read, or
// a context root, classified by kind.
type Site struct {
	Kind string         `json:"kind"`
	Pos  token.Position `json:"pos"`
}

// CallSite is one outgoing call edge. Callee is either "fn:<func-id>" for a
// statically resolved target or "iface:<pkg>.<iface>.<method>" for dynamic
// dispatch through a named interface; the latter is resolved to concrete
// implementers at index time (see Index), never inside the cached summary,
// so a summary stays valid when *other* packages gain implementers.
type CallSite struct {
	Callee string         `json:"callee"`
	Pos    token.Position `json:"pos"`
	// Go marks a call that is the operand of a go statement: the callee
	// runs on a new goroutine, so blocking there does not block the caller
	// (deadline skips these edges; golife owns them instead).
	Go bool `json:"go,omitempty"`
	// Held lists the non-local mutex IDs held at the call site, sorted —
	// the raw material of lockorder's cross-function edge and
	// held-across-blocking analysis.
	Held []string `json:"held,omitempty"`
}

// LockOp is one mutex acquire site. Mutex is the stable identity — a
// "pkgpath.Type.field" for struct-field mutexes, "pkgpath.name" for
// package-level ones, "local:name" for locals (excluded from cross-function
// reasoning) — and Mode is "w" (Lock) or "r" (RLock).
type LockOp struct {
	Mutex string         `json:"mutex"`
	Mode  string         `json:"mode"`
	Pos   token.Position `json:"pos"`
}

// LockEdge is one intra-function nested acquire: Inner was acquired while
// Outer was held. Edges feed the whole-module lock-order graph.
type LockEdge struct {
	Outer string         `json:"outer"`
	Inner string         `json:"inner"`
	Pos   token.Position `json:"pos"`
}

// ChanOp is one channel operation. Chan uses the same identity scheme as
// LockOp.Mutex. Select marks ops that are a select communication clause;
// CtxGuarded marks ops inside a select that also has a ctx.Done()/timer
// case or a default clause (so the op cannot block forever); JoinGuarded
// marks a receive that is a join on a completion channel — the function
// closed a sibling stop channel of the same struct earlier on the path.
type ChanOp struct {
	Op          string         `json:"op"` // "send", "recv", "close"
	Chan        string         `json:"chan"`
	Pos         token.Position `json:"pos"`
	Select      bool           `json:"select,omitempty"`
	CtxGuarded  bool           `json:"ctxGuarded,omitempty"`
	JoinGuarded bool           `json:"joinGuarded,omitempty"`
	Held        []string       `json:"held,omitempty"`
}

// SpawnSite is one go statement. For `go func(){...}()` the closure body is
// analyzed in place: Signals lists the termination signals found ("join"
// for wg.Done paired with a same-function wg.Wait, "ctx" for a
// ctx.Done()/timer receive, "chan:<id>" for a receive on an identified
// stop channel, "bounded" for a straight-line body), and Closes lists the
// channels the goroutine closes (its completion broadcast). For `go f()`
// Callee carries the call key and the checker consults f's own summary.
type SpawnSite struct {
	Pos     token.Position `json:"pos"`
	Callee  string         `json:"callee,omitempty"`
	Signals []string       `json:"signals,omitempty"`
	Closes  []string       `json:"closes,omitempty"`
}

// FuncEffects is the intraprocedural summary of one function: what it
// allocates, which forbidden sources it reads, where its calls go, and how
// it treats contexts. Closures are folded into their enclosing declaration —
// a FuncLit contributes a "closure" allocation plus all of its body's
// effects under the enclosing function's ID. Summaries are computed from
// non-test files only and are JSON-stable for the on-disk cache.
type FuncEffects struct {
	ID       string         `json:"id"`
	PkgPath  string         `json:"pkgPath"`
	Pos      token.Position `json:"pos"`
	Exported bool           `json:"exported"`
	Hot      bool           `json:"hot"`

	Allocs  []Site     `json:"allocs,omitempty"`
	Sources []Site     `json:"sources,omitempty"`
	Calls   []CallSite `json:"calls,omitempty"`

	// WritesCaptured records assignments inside closures whose target is
	// declared outside the closure — the raw material of a data race when
	// the closure escapes to another goroutine.
	WritesCaptured []Site `json:"writesCaptured,omitempty"`

	// Ownership facts for poollife. Acquires/Releases are the sync.Pool
	// Get/Put call sites in the body; OwnsResults, TransfersParams and
	// TransfersRecv mirror the //declint:owns and //declint:transfers doc
	// directives (result/parameter indices whose custody crosses the call);
	// DirectiveErrs records malformed ownership directives so a typo cannot
	// silently disable enforcement. GlobalWrites are assignments whose
	// target roots at a package-level variable — the raw material of an
	// impure memoized stage (see checkMemoPure).
	Acquires        []Site `json:"acquires,omitempty"`
	Releases        []Site `json:"releases,omitempty"`
	OwnsResults     []int  `json:"ownsResults,omitempty"`
	TransfersParams []int  `json:"transfersParams,omitempty"`
	TransfersRecv   bool   `json:"transfersRecv,omitempty"`
	DirectiveErrs   []Site `json:"directiveErrs,omitempty"`
	GlobalWrites    []Site `json:"globalWrites,omitempty"`

	// Context facts for ctxflow: HasCtx when the signature takes a
	// context.Context, CtxParam/CtxPos name the first such parameter,
	// CtxUsed when any ctx parameter is referenced in the body (a parameter
	// named or declared _ counts as an explicit, documented drop), and
	// CtxRoots are the context.Background/TODO call sites in the body.
	HasCtx   bool           `json:"hasCtx,omitempty"`
	CtxParam string         `json:"ctxParam,omitempty"`
	CtxUsed  bool           `json:"ctxUsed,omitempty"`
	CtxPos   token.Position `json:"ctxPos,omitempty"`
	CtxRoots []Site         `json:"ctxRoots,omitempty"`

	// Concurrency facts for lockorder/golife/chandisc/deadline, produced by
	// the path-sensitive walker in concurrency_effects.go. Locks are the
	// acquire sites; LockBugs are intra-function protocol violations found
	// by the walker itself (double-lock on a path, unlock-without-lock,
	// lock leaked past a return, send-after-close); LockEdges are nested
	// acquires; Spawns are go statements; TimerLoops are time.After calls
	// inside loops; MagicBuffers are make(chan, N) with a bare integer
	// literal capacity. SpawnsReason / LocksAfter mirror the
	// //declint:spawns and //declint:locks-after doc directives, with
	// malformed ones recorded in ConcDirectiveErrs.
	Locks             []LockOp    `json:"locks,omitempty"`
	LockEdges         []LockEdge  `json:"lockEdges,omitempty"`
	LockBugs          []Site      `json:"lockBugs,omitempty"`
	ChanOps           []ChanOp    `json:"chanOps,omitempty"`
	Spawns            []SpawnSite `json:"spawns,omitempty"`
	SpawnsReason      string      `json:"spawnsReason,omitempty"`
	LocksAfter        []string    `json:"locksAfter,omitempty"`
	TimerLoops        []Site      `json:"timerLoops,omitempty"`
	MagicBuffers      []Site      `json:"magicBuffers,omitempty"`
	ConcDirectiveErrs []Site      `json:"concDirectiveErrs,omitempty"`
	// InfLoop marks a `for {}`-shaped loop in the body: a function spawned
	// as a goroutine with such a loop and no termination signal leaks.
	InfLoop bool `json:"infLoop,omitempty"`
}

// funcIDOf renders the stable identity of a function or method:
// "pkg/path.Name" for package functions, "pkg/path.(Recv).Name" for methods
// (pointer receivers and generic instantiations collapse onto the origin).
func funcIDOf(fn *types.Func) string {
	fn = fn.Origin()
	if fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + ".(" + n.Obj().Name() + ")." + fn.Name()
		}
		return fn.Pkg().Path() + ".(?)." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// docHasMarker reports whether the doc comment carries the given directive
// on a line of its own.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// syncPoolMethod reports which sync.Pool method a call invokes ("Get" or
// "Put"), or "" when the call is not a sync.Pool method call. The receiver
// may be a field or local of type sync.Pool or *sync.Pool.
func syncPoolMethod(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok || n.Obj().Pkg() == nil ||
		n.Obj().Pkg().Path() != "sync" || n.Obj().Name() != "Pool" {
		return ""
	}
	if name := sel.Sel.Name; name == "Get" || name == "Put" {
		return name
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// pointerShaped reports whether boxing a value of type t into an interface
// copies a single pointer word and therefore cannot allocate: pointers,
// channels, maps, functions, and unsafe pointers. Everything else (ints,
// floats, strings, slices, structs) allocates when converted to an
// interface on the general path, which is what hotalloc polices.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// staticFuncRef resolves e to the *types.Func it names, when e is a direct
// reference: a plain function ident, a package-qualified function, or a
// method value/expression. Nil for anything dynamic.
func staticFuncRef(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil
		}
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// collectFuncVars maps local variables to the static functions assigned to
// them anywhere in the declaration, so a call through a func-typed local
// (`pass := slidingMin; ...; pass(line)`) resolves to every candidate.
func collectFuncVars(info *types.Info, fd *ast.FuncDecl) map[types.Object][]*types.Func {
	vars := map[types.Object][]*types.Func{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		fn := staticFuncRef(info, rhs)
		if fn == nil {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if _, isVar := obj.(*types.Var); isVar {
			vars[obj] = append(vars[obj], fn)
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return vars
}

// resolveCallTargets returns the call-edge keys for a callee expression:
// zero or more "fn:<id>" entries, or one "iface:<pkg>.<iface>.<method>"
// entry for dispatch through a named interface.
func resolveCallTargets(info *types.Info, fun ast.Expr, funcVars map[types.Object][]*types.Func) []string {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			if id := funcIDOf(obj); id != "" {
				return []string{"fn:" + id}
			}
		case *types.Var:
			var out []string
			for _, fn := range funcVars[obj] {
				if id := funcIDOf(fn); id != "" {
					out = append(out, "fn:"+id)
				}
			}
			return out
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok || sel.Kind() == types.FieldVal {
				return nil
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					if named.Obj().Pkg() == nil {
						return nil // universe interfaces (error)
					}
					return []string{"iface:" + named.Obj().Pkg().Path() + "." +
						named.Obj().Name() + "." + fn.Name()}
				}
			}
			if _, isIface := recv.Underlying().(*types.Interface); isIface {
				return nil // anonymous interface or type parameter
			}
			if id := funcIDOf(fn); id != "" {
				return []string{"fn:" + id}
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if id := funcIDOf(fn); id != "" {
				return []string{"fn:" + id}
			}
		}
	}
	return nil
}

// isReuseAppend recognizes the sanctioned no-growth idiom
// `append(x[:0], ...)` (equivalently x[0:0]) that reuses backing storage.
func isReuseAppend(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	tv, ok := info.Types[se.High]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := intConst(tv)
	return exact && v == 0
}

func intConst(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	s := tv.Value.ExactString()
	v, err := strconv.ParseInt(s, 10, 64)
	return v, err == nil
}

// rootObj peels selectors, indexes, slices, derefs, and parens down to the
// base identifier's object, or nil when the base is not a plain name.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// effectsWalker accumulates one function's summary during a single AST
// walk, tracking the enclosing-node stack so closure-captured writes can be
// distinguished from ordinary local assignments.
type effectsWalker struct {
	pkg     *Package
	fx      *FuncEffects
	ctxObjs map[types.Object]bool
	vars    map[types.Object][]*types.Func
	stack   []ast.Node
}

func (w *effectsWalker) innermostLit() *ast.FuncLit {
	for i := len(w.stack) - 1; i >= 0; i-- {
		if lit, ok := w.stack[i].(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

func (w *effectsWalker) alloc(kind string, n ast.Node) {
	w.fx.Allocs = append(w.fx.Allocs, Site{Kind: kind, Pos: w.pkg.pos(n)})
}

func (w *effectsWalker) source(kind string, n ast.Node) {
	w.fx.Sources = append(w.fx.Sources, Site{Kind: kind, Pos: w.pkg.pos(n)})
}

func (w *effectsWalker) visit(n ast.Node) bool {
	if n == nil {
		w.stack = w.stack[:len(w.stack)-1]
		return false
	}
	w.stack = append(w.stack, n)
	info := w.pkg.Info
	switch n := n.(type) {
	case *ast.FuncLit:
		w.alloc("closure", n)
	case *ast.CallExpr:
		w.visitCall(n)
	case *ast.CompositeLit:
		if tv, ok := info.Types[n]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				w.alloc("map literal", n)
			case *types.Slice:
				w.alloc("slice literal", n)
			}
		}
	case *ast.SelectorExpr:
		if selectsPkgFunc(info, n, "time", "Now") {
			w.source("time.Now", n)
		} else if pn := pkgNameOf(info, n.X); pn != nil {
			if p := pn.Imported().Path(); p == "math/rand" || p == "math/rand/v2" {
				w.source("math/rand", n)
			}
		}
	case *ast.RangeStmt:
		if n.X != nil {
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if sink, what := orderDependentSink(n.Body, info); sink != nil {
						w.source("map-ordered output ("+what+")", n)
					}
				}
			}
		}
	case *ast.Ident:
		if w.ctxObjs[info.Uses[n]] {
			w.fx.CtxUsed = true
		}
	case *ast.AssignStmt:
		if n.Tok != token.DEFINE {
			for _, lhs := range n.Lhs {
				w.visitWrite(lhs)
				w.visitGlobalWrite(lhs)
			}
		}
	case *ast.IncDecStmt:
		w.visitWrite(n.X)
		w.visitGlobalWrite(n.X)
	}
	return true
}

// visitWrite records a captured-variable write when the assignment sits
// inside a closure but targets state declared outside it.
func (w *effectsWalker) visitWrite(lhs ast.Expr) {
	lit := w.innermostLit()
	if lit == nil {
		return
	}
	obj := rootObj(w.pkg.Info, lhs)
	if v, ok := obj.(*types.Var); ok && !declaredWithin(v, lit) {
		w.fx.WritesCaptured = append(w.fx.WritesCaptured,
			Site{Kind: "write to captured " + v.Name(), Pos: w.pkg.pos(lhs)})
	}
}

// visitGlobalWrite records an assignment whose target roots at a
// package-level variable, wherever it occurs (closure or not).
func (w *effectsWalker) visitGlobalWrite(lhs ast.Expr) {
	obj := rootObj(w.pkg.Info, lhs)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	w.fx.GlobalWrites = append(w.fx.GlobalWrites,
		Site{Kind: "write to package-level " + v.Name(), Pos: w.pkg.pos(lhs)})
}

func (w *effectsWalker) visitCall(call *ast.CallExpr) {
	info := w.pkg.Info
	fun := ast.Unparen(call.Fun)

	switch syncPoolMethod(info, call) {
	case "Get":
		w.fx.Acquires = append(w.fx.Acquires, Site{Kind: "sync.Pool.Get", Pos: w.pkg.pos(call)})
	case "Put":
		w.fx.Releases = append(w.fx.Releases, Site{Kind: "sync.Pool.Put", Pos: w.pkg.pos(call)})
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				w.alloc(b.Name(), call)
			case "append":
				if !isReuseAppend(info, call) {
					w.alloc("append-growth", call)
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion, not a call. T(x) with interface T boxes x.
		if t := tv.Type; types.IsInterface(t) && len(call.Args) == 1 {
			w.checkBoxing(t, call.Args[0])
		}
		return
	}

	if selectsPkgFunc(info, fun, "context", "Background") {
		w.fx.CtxRoots = append(w.fx.CtxRoots, Site{Kind: "context.Background", Pos: w.pkg.pos(call)})
	} else if selectsPkgFunc(info, fun, "context", "TODO") {
		w.fx.CtxRoots = append(w.fx.CtxRoots, Site{Kind: "context.TODO", Pos: w.pkg.pos(call)})
	}

	for _, target := range resolveCallTargets(info, fun, w.vars) {
		w.fx.Calls = append(w.fx.Calls, CallSite{Callee: target, Pos: w.pkg.pos(call)})
	}

	// Interface boxing of arguments: a concrete, non-pointer-shaped value
	// passed to an interface parameter allocates.
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through, no boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		w.checkBoxing(pt, arg)
	}
}

func (w *effectsWalker) checkBoxing(to types.Type, arg ast.Expr) {
	at, ok := w.pkg.Info.Types[arg]
	if !ok || at.IsNil() || at.Type == nil {
		return
	}
	if types.IsInterface(at.Type) {
		return // interface-to-interface, no new box
	}
	if _, isTP := at.Type.(*types.TypeParam); isTP {
		return
	}
	if pointerShaped(at.Type) {
		return
	}
	_ = to
	w.alloc("interface boxing", arg)
}

// directiveLine reports whether text is marker alone or marker followed by
// whitespace — so e.g. "//declint:ownship" never matches ownsMarker.
func directiveLine(text, marker string) bool {
	if !strings.HasPrefix(text, marker) {
		return false
	}
	rest := text[len(marker):]
	return rest == "" || strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t")
}

// parseIndexList parses a comma-separated list of non-negative indices
// ("0" or "0,1"). The bool is false on any malformed element.
func parseIndexList(s string) ([]int, bool) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// parseOwnershipDirectives fills the //declint:owns and //declint:transfers
// facts of fx from fd's doc comment, recording malformed or out-of-range
// directives in DirectiveErrs (reported by poollife) rather than dropping
// them silently.
func parseOwnershipDirectives(pkg *Package, fd *ast.FuncDecl, fx *FuncEffects, sig *types.Signature) {
	if fd.Doc == nil {
		return
	}
	bad := func(c *ast.Comment, msg string) {
		fx.DirectiveErrs = append(fx.DirectiveErrs, Site{Kind: msg, Pos: pkg.pos(c)})
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case directiveLine(text, ownsMarker):
			fields := strings.Fields(text[len(ownsMarker):])
			idxs := []int{0}
			if len(fields) > 0 && fields[0] == "result" {
				if len(fields) < 2 {
					bad(c, "malformed "+ownsMarker+": 'result' needs indices, e.g. 'result 0,1'")
					continue
				}
				var ok bool
				if idxs, ok = parseIndexList(fields[1]); !ok {
					bad(c, "malformed "+ownsMarker+": bad result index list "+strconv.Quote(fields[1]))
					continue
				}
			}
			n := sig.Results().Len()
			outOfRange := false
			for _, k := range idxs {
				if k >= n {
					bad(c, ownsMarker+" names result "+strconv.Itoa(k)+
						" but the function has only "+strconv.Itoa(n)+" result(s)")
					outOfRange = true
				}
			}
			if !outOfRange {
				fx.OwnsResults = idxs
			}
		case directiveLine(text, transfersMarker):
			fields := strings.Fields(text[len(transfersMarker):])
			if len(fields) > 0 && fields[0] == "receiver" {
				if sig.Recv() == nil {
					bad(c, transfersMarker+" receiver on a function with no receiver")
					continue
				}
				fx.TransfersRecv = true
				continue
			}
			idxs := []int{0}
			if len(fields) > 0 && fields[0] == "param" {
				if len(fields) < 2 {
					bad(c, "malformed "+transfersMarker+": 'param' needs indices, e.g. 'param 0,1'")
					continue
				}
				var ok bool
				if idxs, ok = parseIndexList(fields[1]); !ok {
					bad(c, "malformed "+transfersMarker+": bad param index list "+strconv.Quote(fields[1]))
					continue
				}
			}
			n := sig.Params().Len()
			outOfRange := false
			for _, k := range idxs {
				if k >= n {
					bad(c, transfersMarker+" names param "+strconv.Itoa(k)+
						" but the function has only "+strconv.Itoa(n)+" parameter(s)")
					outOfRange = true
				}
			}
			if !outOfRange {
				fx.TransfersParams = idxs
			}
		}
	}
}

// parseConcurrencyDirectives fills the //declint:spawns and
// //declint:locks-after facts of fx from fd's doc comment. Both demand an
// argument (a reason, a mutex name); malformed directives land in
// ConcDirectiveErrs so a typo cannot silently sanction a topology.
func parseConcurrencyDirectives(pkg *Package, fd *ast.FuncDecl, fx *FuncEffects) {
	if fd.Doc == nil {
		return
	}
	bad := func(c *ast.Comment, msg string) {
		fx.ConcDirectiveErrs = append(fx.ConcDirectiveErrs, Site{Kind: msg, Pos: pkg.pos(c)})
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case directiveLine(text, spawnsMarker):
			reason := strings.TrimSpace(text[len(spawnsMarker):])
			if reason == "" {
				bad(c, "malformed "+spawnsMarker+": a reason is mandatory")
				continue
			}
			fx.SpawnsReason = reason
		case directiveLine(text, locksAfterMarker):
			fields := strings.Fields(text[len(locksAfterMarker):])
			if len(fields) == 0 {
				bad(c, "malformed "+locksAfterMarker+": name the outer mutex, e.g. obs.TailSampler.mu")
				continue
			}
			fx.LocksAfter = append(fx.LocksAfter, fields[0])
		}
	}
}

// computeFuncEffects summarizes one declaration. idSuffix disambiguates the
// (uncallable) init functions, which may legally repeat per package.
func computeFuncEffects(pkg *Package, fd *ast.FuncDecl, idSuffix string) *FuncEffects {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil || fd.Body == nil {
		return nil
	}
	fx := &FuncEffects{
		ID:       funcIDOf(obj) + idSuffix,
		PkgPath:  pkg.Path,
		Pos:      pkg.pos(fd.Name),
		Exported: fd.Name.IsExported(),
		Hot:      docHasMarker(fd.Doc, hotMarker),
	}
	if sig, ok := obj.Type().(*types.Signature); ok {
		parseOwnershipDirectives(pkg, fd, fx, sig)
	}
	parseConcurrencyDirectives(pkg, fd, fx)
	ctxObjs := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok || !isContextType(tv.Type) {
				continue
			}
			fx.HasCtx = true
			if len(field.Names) == 0 {
				// Unnamed parameter: impossible to use, explicit drop.
				fx.CtxUsed = true
				if fx.CtxParam == "" {
					fx.CtxParam = "_"
					fx.CtxPos = pkg.pos(field)
				}
				continue
			}
			for _, name := range field.Names {
				if fx.CtxParam == "" {
					fx.CtxParam = name.Name
					fx.CtxPos = pkg.pos(name)
				}
				if name.Name == "_" {
					fx.CtxUsed = true
					continue
				}
				if o := pkg.Info.Defs[name]; o != nil {
					ctxObjs[o] = true
				}
			}
		}
	}
	w := &effectsWalker{
		pkg:     pkg,
		fx:      fx,
		ctxObjs: ctxObjs,
		vars:    collectFuncVars(pkg.Info, fd),
	}
	ast.Inspect(fd.Body, w.visit)
	analyzeConcurrency(pkg, fd, fx, ctxObjs)
	return fx
}

// computePackageEffects summarizes every function declared in the package's
// non-test files, sorted by ID for a canonical (cacheable) order.
func computePackageEffects(pkg *Package) []*FuncEffects {
	var out []*FuncEffects
	initSeq := 0
	for _, f := range pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			suffix := ""
			if fd.Name.Name == "init" && fd.Recv == nil {
				initSeq++
				suffix = "#" + strconv.Itoa(initSeq)
			}
			if fx := computeFuncEffects(pkg, fd, suffix); fx != nil {
				out = append(out, fx)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Pos.Offset < out[j].Pos.Offset
	})
	return out
}
