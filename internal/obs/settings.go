package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Settings is the serializable observability configuration shared by the
// CLIs and SystemConfig. The zero value means "everything off", matching
// the package default.
type Settings struct {
	// Metrics enables recording into the default registry.
	Metrics bool `json:"metrics,omitempty"`
	// MetricsOut is where to dump the registry on Close: a file path, or
	// "-" for stdout. Implies Metrics.
	MetricsOut string `json:"metrics_out,omitempty"`
	// MetricsFormat selects the dump format: "json" (default) or "prom".
	MetricsFormat string `json:"metrics_format,omitempty"`
	// DebugAddr, when non-empty, serves /healthz, /metrics,
	// /debug/events, /debug/traces and /debug/pprof on this address for
	// the life of the session.
	DebugAddr string `json:"debug_addr,omitempty"`
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile string `json:"cpuprofile,omitempty"`
	MemProfile string `json:"memprofile,omitempty"`

	// EventsOut, when non-empty, installs a flight recorder and dumps its
	// retained wide events as NDJSON on Close: a file path, or "-" for
	// stdout.
	EventsOut string `json:"events_out,omitempty"`
	// EventBuffer sizes the flight-recorder ring (default 1024). A
	// positive value installs a recorder even without EventsOut (events
	// then reachable via /debug/events).
	EventBuffer int `json:"event_buffer,omitempty"`
	// TraceKeep sizes the tail-sampler ring (default 64 when TraceOut or
	// TraceSample ask for retention). A positive value installs the
	// sampler.
	TraceKeep int `json:"trace_keep,omitempty"`
	// TraceOut, when non-empty, dumps the retained traces as NDJSON on
	// Close ("-" for stdout) and installs the sampler.
	TraceOut string `json:"trace_out,omitempty"`
	// TraceSample is the probability in [0,1] of retaining an otherwise
	// unremarkable trace (errored, record and adaptively slow traces are
	// always kept).
	TraceSample float64 `json:"trace_sample,omitempty"`
	// Watchdog starts the runtime watchdog for the session.
	Watchdog bool `json:"watchdog,omitempty"`
	// WatchdogIntervalMs overrides the watchdog sampling interval
	// (default 1000).
	WatchdogIntervalMs int `json:"watchdog_interval_ms,omitempty"`
}

// Session is the running state created by Settings.Apply. Close stops
// profiling and the watchdog, writes any requested dumps, uninstalls the
// recorder/sampler it installed, and shuts the debug server down.
type Session struct {
	settings Settings
	stopCPU  func() error
	server   *DebugServer
	recorder *Recorder
	tail     *TailSampler
	watchdog *Watchdog
}

// Recorder returns the flight recorder this session installed (nil when
// events were not requested).
func (s *Session) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.recorder
}

// Tail returns the tail sampler this session installed (nil when trace
// retention was not requested).
func (s *Session) Tail() *TailSampler {
	if s == nil {
		return nil
	}
	return s.tail
}

// DebugAddr returns the bound debug-server address, or "" if none was
// requested.
func (s *Session) DebugAddr() string {
	if s == nil {
		return ""
	}
	return s.server.Addr()
}

// Apply activates the settings: enables metrics recording, starts CPU
// profiling and the debug server. The returned Session must be Closed to
// flush profiles and dumps; Close is safe on a nil Session, so callers
// can unconditionally defer it.
func (s Settings) Apply() (*Session, error) {
	sess := &Session{settings: s}
	if s.Metrics || s.MetricsOut != "" || s.DebugAddr != "" ||
		s.wantRecorder() || s.wantTail() || s.Watchdog {
		Enable()
	}
	if s.wantRecorder() {
		sess.recorder = NewRecorder(s.EventBuffer)
		SetRecorder(sess.recorder)
	}
	if s.wantTail() {
		sess.tail = NewTailSampler(s.TraceKeep, s.TraceSample)
		SetTailSampler(sess.tail)
	}
	if s.Watchdog {
		sess.watchdog = StartWatchdog(WatchdogConfig{
			Interval: time.Duration(s.WatchdogIntervalMs) * time.Millisecond,
		})
	}
	if s.CPUProfile != "" {
		stop, err := StartCPUProfile(s.CPUProfile)
		if err != nil {
			return nil, err
		}
		sess.stopCPU = stop
	}
	if s.DebugAddr != "" {
		srv, err := ServeDebug(s.DebugAddr)
		if err != nil {
			if sess.stopCPU != nil {
				sess.stopCPU()
			}
			return nil, err
		}
		sess.server = srv
	}
	return sess, nil
}

// wantRecorder reports whether the settings ask for a flight recorder.
func (s Settings) wantRecorder() bool { return s.EventsOut != "" || s.EventBuffer > 0 }

// wantTail reports whether the settings ask for trace retention.
func (s Settings) wantTail() bool {
	return s.TraceKeep > 0 || s.TraceOut != "" || s.TraceSample > 0
}

// dumpNDJSON writes one NDJSON dump to dst ("-" or "" for stdout).
func dumpNDJSON(dst, what string, write func(io.Writer) error) error {
	if dst == "" || dst == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("obs: create %s dump: %w", what, err)
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the default registry to w in the configured format.
func (s Settings) writeMetrics(w io.Writer) error {
	switch strings.ToLower(s.MetricsFormat) {
	case "", "json":
		return Default.WriteJSON(w)
	case "prom", "prometheus":
		return Default.WritePrometheus(w)
	default:
		return fmt.Errorf("obs: unknown metrics format %q (want json or prom)", s.MetricsFormat)
	}
}

// DumpMetrics writes the default registry to dst ("-" or "" for stdout)
// using the settings' format.
func (s Settings) DumpMetrics(dst string) error {
	if dst == "" || dst == "-" {
		return s.writeMetrics(os.Stdout)
	}
	f, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("obs: create metrics dump: %w", err)
	}
	if err := s.writeMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close finishes the session: stops the watchdog and CPU profiling,
// writes the heap profile and the metrics/events/traces dumps if
// requested, uninstalls the recorder and sampler it installed, and closes
// the debug server. The first error wins but every step runs.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	s.watchdog.Stop()
	if s.stopCPU != nil {
		keep(s.stopCPU())
	}
	keep(WriteHeapProfile(s.settings.MemProfile))
	if s.settings.MetricsOut != "" {
		keep(s.settings.DumpMetrics(s.settings.MetricsOut))
	}
	if s.settings.EventsOut != "" {
		keep(dumpNDJSON(s.settings.EventsOut, "events", s.recorder.WriteNDJSON))
	}
	if s.settings.TraceOut != "" {
		keep(dumpNDJSON(s.settings.TraceOut, "traces", s.tail.WriteNDJSON))
	}
	if s.recorder != nil && Events() == s.recorder {
		SetRecorder(nil)
	}
	if s.tail != nil && Tail() == s.tail {
		SetTailSampler(nil)
	}
	keep(s.server.Close())
	return first
}
