package metrics

import (
	"context"
	"math/rand"
	"testing"

	"decamouflage/internal/imgcore"
	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

func noisePair(t testing.TB, rng *rand.Rand, w, h, c int) (*imgcore.Image, *imgcore.Image) {
	t.Helper()
	a, err := imgcore.New(w, h, c)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	for i := range a.Pix {
		a.Pix[i] = rng.Float64() * 255
		b.Pix[i] = a.Pix[i] + rng.NormFloat64()*8
	}
	return a, b
}

// TestSSIMSerialParallelEquivalence: the SSIM score — a single float64
// distilled from five parallel Gaussian sweeps — must be bit-identical
// (==, not approximately) across worker counts, over odd/even/prime
// geometries and both channel counts.
func TestSSIMSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sizes := [][2]int{{12, 12}, {17, 13}, {31, 37}, {64, 24}, {101, 7}}
	for _, wh := range sizes {
		for _, c := range []int{1, 3} {
			a, b := noisePair(t, rng, wh[0], wh[1], c)
			want, err := ssimWith(context.Background(), a, b, DefaultSSIM(), parallel.Workers(1), parallel.Grain(1))
			if err != nil {
				t.Fatalf("%dx%dx%d serial: %v", wh[0], wh[1], c, err)
			}
			for _, workers := range []int{2, 4, 8} {
				got, err := ssimWith(context.Background(), a, b, DefaultSSIM(), parallel.Workers(workers), parallel.Grain(1))
				if err != nil {
					t.Fatalf("%dx%dx%d workers=%d: %v", wh[0], wh[1], c, workers, err)
				}
				if !testutil.BitEqual(got, want) {
					t.Fatalf("%dx%dx%d workers=%d: SSIM %v != serial %v",
						wh[0], wh[1], c, workers, got, want)
				}
			}
		}
	}
}

// TestBlurSeparableSerialParallelEquivalence pins the underlying Gaussian
// sweep itself: every smoothed sample bit-identical across worker counts.
func TestBlurSeparableSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kern := gaussianKernel(5, 1.5)
	for _, wh := range [][2]int{{3, 3}, {16, 9}, {29, 31}, {80, 45}} {
		src := make([]float64, wh[0]*wh[1])
		for i := range src {
			src[i] = rng.Float64() * 255
		}
		want, err := blurSeparable(context.Background(), src, wh[0], wh[1], kern, parallel.Workers(1), parallel.Grain(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 6} {
			got, err := blurSeparable(context.Background(), src, wh[0], wh[1], kern, parallel.Workers(workers), parallel.Grain(1))
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !testutil.BitEqual(got[i], want[i]) {
					t.Fatalf("%dx%d workers=%d: sample %d differs: %v vs %v",
						wh[0], wh[1], workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSSIMPublicAPIMatchesPinnedSerial ties SSIM/SSIMWith (default worker
// count) to the explicitly serial path.
func TestSSIMPublicAPIMatchesPinnedSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, b := noisePair(t, rng, 48, 56, 3)
	got, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ssimWith(context.Background(), a, b, DefaultSSIM(), parallel.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.BitEqual(got, want) {
		t.Fatalf("SSIM = %v diverges from serial %v", got, want)
	}
}

func benchmarkSSIM(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(7))
	x, y := noisePair(b, rng, 256, 256, 1)
	opts := DefaultSSIM()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssimWith(context.Background(), x, y, opts, parallel.Workers(workers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSIM256Serial is the single-worker Gaussian-window SSIM
// baseline at 256×256.
func BenchmarkSSIM256Serial(b *testing.B) { benchmarkSSIM(b, 1) }

// BenchmarkSSIM256Parallel is the same score at the default (GOMAXPROCS)
// worker count.
func BenchmarkSSIM256Parallel(b *testing.B) { benchmarkSSIM(b, parallel.DefaultWorkers()) }
