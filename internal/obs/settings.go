package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Settings is the serializable observability configuration shared by the
// CLIs and SystemConfig. The zero value means "everything off", matching
// the package default.
type Settings struct {
	// Metrics enables recording into the default registry.
	Metrics bool `json:"metrics,omitempty"`
	// MetricsOut is where to dump the registry on Close: a file path, or
	// "-" for stdout. Implies Metrics.
	MetricsOut string `json:"metrics_out,omitempty"`
	// MetricsFormat selects the dump format: "json" (default) or "prom".
	MetricsFormat string `json:"metrics_format,omitempty"`
	// DebugAddr, when non-empty, serves /healthz, /metrics and
	// /debug/pprof on this address for the life of the session.
	DebugAddr string `json:"debug_addr,omitempty"`
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile string `json:"cpuprofile,omitempty"`
	MemProfile string `json:"memprofile,omitempty"`
}

// Session is the running state created by Settings.Apply. Close stops
// profiling, writes any requested dumps, and shuts the debug server down.
type Session struct {
	settings Settings
	stopCPU  func() error
	server   *DebugServer
}

// DebugAddr returns the bound debug-server address, or "" if none was
// requested.
func (s *Session) DebugAddr() string {
	if s == nil {
		return ""
	}
	return s.server.Addr()
}

// Apply activates the settings: enables metrics recording, starts CPU
// profiling and the debug server. The returned Session must be Closed to
// flush profiles and dumps; Close is safe on a nil Session, so callers
// can unconditionally defer it.
func (s Settings) Apply() (*Session, error) {
	sess := &Session{settings: s}
	if s.Metrics || s.MetricsOut != "" || s.DebugAddr != "" {
		Enable()
	}
	if s.CPUProfile != "" {
		stop, err := StartCPUProfile(s.CPUProfile)
		if err != nil {
			return nil, err
		}
		sess.stopCPU = stop
	}
	if s.DebugAddr != "" {
		srv, err := ServeDebug(s.DebugAddr)
		if err != nil {
			if sess.stopCPU != nil {
				sess.stopCPU()
			}
			return nil, err
		}
		sess.server = srv
	}
	return sess, nil
}

// writeMetrics dumps the default registry to w in the configured format.
func (s Settings) writeMetrics(w io.Writer) error {
	switch strings.ToLower(s.MetricsFormat) {
	case "", "json":
		return Default.WriteJSON(w)
	case "prom", "prometheus":
		return Default.WritePrometheus(w)
	default:
		return fmt.Errorf("obs: unknown metrics format %q (want json or prom)", s.MetricsFormat)
	}
}

// DumpMetrics writes the default registry to dst ("-" or "" for stdout)
// using the settings' format.
func (s Settings) DumpMetrics(dst string) error {
	if dst == "" || dst == "-" {
		return s.writeMetrics(os.Stdout)
	}
	f, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("obs: create metrics dump: %w", err)
	}
	if err := s.writeMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close finishes the session: stops CPU profiling, writes the heap
// profile and metrics dump if requested, and closes the debug server.
// The first error wins but every step runs.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.stopCPU != nil {
		keep(s.stopCPU())
	}
	keep(WriteHeapProfile(s.settings.MemProfile))
	if s.settings.MetricsOut != "" {
		keep(s.settings.DumpMetrics(s.settings.MetricsOut))
	}
	keep(s.server.Close())
	return first
}
