package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"decamouflage/internal/testutil"
)

const eps = 1e-9

func complexClose(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Rect(1, angle)
		}
		out[k] = s
	}
	return out
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 127, 128} {
		x := randomComplex(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatalf("FFT(n=%d): %v", n, err)
		}
		want := naiveDFT(x)
		for k := range want {
			if !complexClose(got[k], want[k], 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTEmptyInput(t *testing.T) {
	if _, err := FFT(nil); err == nil {
		t.Error("FFT(nil) = nil error")
	}
	if _, err := IFFT(nil); err == nil {
		t.Error("IFFT(nil) = nil error")
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	snapshot := append([]complex128(nil), x...)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != snapshot[i] {
			t.Fatal("FFT mutated its input")
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of an impulse is all ones.
	got, err := FFT([]complex128{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range got {
		if !complexClose(v, 1, eps) {
			t.Errorf("impulse bin %d = %v, want 1", k, v)
		}
	}
	// DFT of a constant is an impulse at DC.
	got, err = FFT([]complex128{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !complexClose(got[0], 8, eps) {
		t.Errorf("DC bin = %v, want 8", got[0])
	}
	for k := 1; k < 4; k++ {
		if !complexClose(got[k], 0, eps) {
			t.Errorf("bin %d = %v, want 0", k, got[k])
		}
	}
}

// Property: IFFT(FFT(x)) == x for arbitrary lengths.
func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		n := int(seed%60+60)%60 + 1
		x := randomComplex(rng, n)
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(fx)
		if err != nil {
			return false
		}
		for i := range x {
			if !complexClose(back[i], x[i], 1e-8*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval's theorem — sum |x|^2 == (1/n) sum |X|^2.
func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		n := int(seed%50+50)%50 + 2
		x := randomComplex(rng, n)
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		return math.Abs(et-ef/float64(n)) <= 1e-7*(1+et)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: linearity — FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		n := int(seed%40+40)%40 + 1
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x := randomComplex(rng, n)
		y := randomComplex(rng, n)
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + y[i]
		}
		fm, err1 := FFT(mix)
		fx, err2 := FFT(x)
		fy, err3 := FFT(y)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range fm {
			if !complexClose(fm[i], a*fx[i]+fy[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	if _, err := NewMatrix(0, 4); err == nil {
		t.Error("NewMatrix(0,4) = nil error")
	}
	m, err := NewMatrix(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(2, 1, 5+1i)
	if got := m.At(2, 1); got != 5+1i {
		t.Errorf("At = %v", got)
	}
	if _, err := FromReal([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("FromReal length mismatch = nil error")
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{4, 4}, {8, 4}, {5, 7}, {12, 3}, {1, 9}} {
		w, h := dims[0], dims[1]
		data := make([]float64, w*h)
		for i := range data {
			data[i] = rng.Float64() * 255
		}
		m, err := FromReal(data, w, h)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := FFT2D(m)
		if err != nil {
			t.Fatalf("FFT2D(%dx%d): %v", w, h, err)
		}
		back, err := IFFT2D(spec)
		if err != nil {
			t.Fatalf("IFFT2D: %v", err)
		}
		for i := range data {
			if math.Abs(real(back.Data[i])-data[i]) > 1e-8 || math.Abs(imag(back.Data[i])) > 1e-8 {
				t.Fatalf("%dx%d element %d: %v, want %v", w, h, i, back.Data[i], data[i])
			}
		}
	}
}

func TestFFT2DDCComponent(t *testing.T) {
	data := make([]float64, 16)
	var sum float64
	for i := range data {
		data[i] = float64(i)
		sum += data[i]
	}
	m, _ := FromReal(data, 4, 4)
	spec, err := FFT2D(m)
	if err != nil {
		t.Fatal(err)
	}
	if !complexClose(spec.At(0, 0), complex(sum, 0), 1e-9) {
		t.Errorf("DC = %v, want %v", spec.At(0, 0), sum)
	}
}

func TestFFT2DErrors(t *testing.T) {
	if _, err := FFT2D(nil); err == nil {
		t.Error("FFT2D(nil) = nil error")
	}
	if _, err := IFFT2D(&Matrix{}); err == nil {
		t.Error("IFFT2D(empty) = nil error")
	}
}

func TestShiftCentersDC(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {5, 5}, {6, 3}} {
		w, h := dims[0], dims[1]
		m, _ := NewMatrix(w, h)
		m.Set(0, 0, 1) // DC bin
		s := Shift(m)
		cx, cy := w/2, h/2
		if w%2 == 1 {
			cx = w / 2
		}
		if got := s.At(cx, cy); got != 1 {
			t.Errorf("%dx%d: DC after shift at (%d,%d) = %v, want 1", w, h, cx, cy, got)
		}
		// Total mass preserved.
		var sum complex128
		for _, v := range s.Data {
			sum += v
		}
		if !complexClose(sum, 1, eps) {
			t.Errorf("%dx%d: shift lost mass: %v", w, h, sum)
		}
	}
}

func TestShiftIsPermutation(t *testing.T) {
	m, _ := NewMatrix(5, 4)
	for i := range m.Data {
		m.Data[i] = complex(float64(i), 0)
	}
	s := Shift(m)
	seen := make(map[float64]bool)
	for _, v := range s.Data {
		seen[real(v)] = true
	}
	if len(seen) != len(m.Data) {
		t.Errorf("shift is not a permutation: %d unique of %d", len(seen), len(m.Data))
	}
}

func TestCenteredSpectrumOfConstantImage(t *testing.T) {
	w, h := 16, 16
	data := make([]float64, w*h)
	for i := range data {
		data[i] = 200
	}
	spec, err := CenteredSpectrum(data, w, h)
	if err != nil {
		t.Fatal(err)
	}
	// A constant image has all its energy at DC: exactly one bright point
	// at the center, everything else ~0.
	cx, cy := w/2, h/2
	if !testutil.BitEqual(spec[cy*w+cx], 1) {
		t.Errorf("center = %v, want 1 (normalized max)", spec[cy*w+cx])
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x == cx && y == cy {
				continue
			}
			if spec[y*w+x] > 1e-6 {
				t.Fatalf("off-center energy at (%d,%d): %v", x, y, spec[y*w+x])
			}
		}
	}
}

func TestCenteredSpectrumPeriodicSignalHasSidePeaks(t *testing.T) {
	// A strong periodic component produces symmetric side peaks away from
	// the center — the signature the steganalysis detector keys on.
	w, h := 32, 32
	data := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			data[y*w+x] = 128 + 100*math.Cos(2*math.Pi*8*float64(x)/float64(w))
		}
	}
	spec, err := CenteredSpectrum(data, w, h)
	if err != nil {
		t.Fatal(err)
	}
	cy := h / 2
	cx := w / 2
	left := spec[cy*w+(cx-8)]
	right := spec[cy*w+(cx+8)]
	if left < 0.8 || right < 0.8 {
		t.Errorf("side peaks = %v, %v, want bright (>0.8)", left, right)
	}
}

func TestCenteredSpectrumErrors(t *testing.T) {
	if _, err := CenteredSpectrum([]float64{1, 2}, 3, 3); err == nil {
		t.Error("CenteredSpectrum with bad length = nil error")
	}
}

func TestCenteredSpectrumAllZeros(t *testing.T) {
	spec, err := CenteredSpectrum(make([]float64, 16), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range spec {
		if !testutil.BitEqual(v, 0) {
			t.Fatalf("zero image spectrum has energy: %v", v)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomComplex(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomComplex(rng, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT2D256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 256*256)
	for i := range data {
		data[i] = rng.Float64()
	}
	m, _ := FromReal(data, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT2D(m); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: circular time shift leaves the magnitude spectrum unchanged
// (the shift theorem) — the basis for the centered spectrum being a
// position-independent signature.
func TestShiftTheoremMagnitudeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		n := int(seed%40+40)%40 + 4
		shift := int(seed%7+7)%7 + 1
		x := randomComplex(rng, n)
		shifted := make([]complex128, n)
		for i := range x {
			shifted[(i+shift)%n] = x[i]
		}
		fx, err1 := FFT(x)
		fs, err2 := FFT(shifted)
		if err1 != nil || err2 != nil {
			return false
		}
		for k := range fx {
			if math.Abs(cmplx.Abs(fx[k])-cmplx.Abs(fs[k])) > 1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the DFT of a real signal is Hermitian — X[k] = conj(X[n-k]).
func TestRealSignalHermitianSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		n := int(seed%50+50)%50 + 2
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64()*100, 0)
		}
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		for k := 1; k < n; k++ {
			if cmplx.Abs(fx[k]-cmplx.Conj(fx[n-k])) > 1e-8*float64(n) {
				return false
			}
		}
		return imag(fx[0]) < 1e-9 && imag(fx[0]) > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
