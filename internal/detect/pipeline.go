// The stage-DAG pipeline engine. An ensemble pass over one image is a
// small DAG of typed stages:
//
//	input tensor ──┬─▶ grayscale ──▶ 2-D spectrum ──▶ CSP count
//	               │       └───────▶ SSIM reference
//	               ├─▶ downscale ──▶ upscale round trip ──▶ metric score
//	               └─▶ min-filter ─────────────────────────▶ metric score
//
// The legacy per-scorer path re-derives shared substrates per method: an
// ensemble with several scaling or filtering members recomputes round
// trips, gray planes and spectra it already has. The pipeline instead
// gives every image one Intermediates table whose entries are memoized by
// stage identity (stageKey), so each substrate is computed exactly once
// per image no matter how many scorers request it, and derived scores
// (PSNR from a memoized MSE, every SSIM from one prepared reference)
// reuse the heavy work. Pipeline-level LRU caches share prepared scalers
// and 2-D FFT plans across all images of a batch, and pooled pixel
// buffers flow through the request instead of being allocated per stage.
//
// Scores are bit-identical to the legacy path (pinned by the differential
// suite in pipeline_diff_test.go): every stage runs the same kernels in
// the same order as its legacy counterpart, memoization only removes
// repeated identical computations, and buffer pooling only changes where
// results are written, not what is written.
//
// Inputs whose samples are all 8-bit integers — every decoded PNG and
// every quantized attack output — additionally get a memoized U8Image
// view, and the gray and min-filter stages route through uint8 kernels
// that are provably bit-identical on such inputs (LUT luminance, integer
// vHGW erosion). The fixed-point downscale, which is tolerance-accurate
// rather than bit-exact, stays behind the opt-in quantized mode
// (Ensemble.SetQuantized).
package detect

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"decamouflage/internal/cache"
	"decamouflage/internal/filtering"
	"decamouflage/internal/fourier"
	"decamouflage/internal/imgcore"
	"decamouflage/internal/metrics"
	"decamouflage/internal/obs"
	"decamouflage/internal/scaling"
	"decamouflage/internal/steg"
)

// PipelineScorer is a Scorer that can score through a per-image
// Intermediates table, sharing memoized substrates with the other members
// of an ensemble. The built-in scorers implement it; third-party scorers
// that don't fall back to Score/ScoreCtx on the un-shared input image.
type PipelineScorer interface {
	Scorer
	// ScorePipeline computes the raw metric value for the image behind in,
	// requesting every expensive substrate from in's memo table.
	ScorePipeline(ctx context.Context, in *Intermediates) (float64, error)
}

// Interface compliance.
var (
	_ PipelineScorer = (*ScalingScorer)(nil)
	_ PipelineScorer = (*FilteringScorer)(nil)
	_ PipelineScorer = (*StegScorer)(nil)
)

// stageKind enumerates the typed stages of the detection DAG.
type stageKind uint8

const (
	stageGray stageKind = iota + 1
	stageRoundTrip
	stageMinFilter
	stageSpectrum
	stageCSP
	stageSSIMRef
	stageMSE
	stageU8
)

// stageKey is the identity of one stage instance for one image: the stage
// kind plus every parameter that changes its output. Two scorers whose
// keys are equal provably need the same bytes, so they share one memo
// entry.
type stageKey struct {
	kind stageKind
	// of is the substrate kind a derived stage (stageMSE) consumes.
	of stageKind
	// dstW/dstH/sopts identify a round trip's downscale geometry.
	dstW, dstH int
	sopts      scaling.Options
	// window identifies a minimum-filter stage.
	window int
	// gopts identifies a CSP stage (resolved, so zero-valued and
	// explicitly-defaulted options share an entry).
	gopts steg.Options
}

// memoEntry is a once-computed stage result.
type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// Pipeline holds the cross-image state of the stage engine: prepared-
// scaler and FFT-plan caches shared by every image of a batch, the memo
// hit/miss counters, and the per-stage latency histograms. An Ensemble
// owns one Pipeline for its lifetime; it is safe for concurrent use.
type Pipeline struct {
	scalers *cache.LRU[scalerKey, *scaling.Scaler]
	plans   *cache.LRU[geomKey, *fourier.Plan2D]
	memo    *obs.MemoStats

	// quantized routes the round trip's downscale through the Q1.15
	// fixed-point resize when the input has an 8-bit view. Unlike the
	// automatic u8 routing (gray LUT, u8 min filter), the fixed-point
	// resize is tolerance-accurate rather than bit-identical to the
	// float64 path, so it is opt-in (Ensemble.SetQuantized).
	quantized atomic.Bool

	grayH, downH, upH, minH, specH, cspH, metricH, u8H *obs.Histogram
}

type scalerKey struct {
	srcW, srcH, dstW, dstH int
	opts                   scaling.Options
}

type geomKey struct{ w, h int }

// Cache capacities: a deployment scores against a handful of geometries
// (one per protected model, plus the round-trip inverses), so small LRUs
// hold the whole working set while bounding pathological geometry scans.
const (
	scalerCacheCap = 32
	planCacheCap   = 16
)

// NewPipeline builds a stage engine with empty caches.
func NewPipeline() *Pipeline {
	return &Pipeline{
		scalers: cache.NewLRU[scalerKey, *scaling.Scaler](scalerCacheCap, obs.NewCacheStats("detect.pipeline.scalers")),
		plans:   cache.NewLRU[geomKey, *fourier.Plan2D](planCacheCap, obs.NewCacheStats("detect.pipeline.plans")),
		memo:    obs.NewMemoStats("detect.pipeline.memo"),
		grayH:   obs.H("detect.pipeline.gray.seconds"),
		downH:   obs.H("detect.pipeline.downscale.seconds"),
		upH:     obs.H("detect.pipeline.upscale.seconds"),
		minH:    obs.H("detect.pipeline.minfilter.seconds"),
		specH:   obs.H("detect.pipeline.spectrum.seconds"),
		cspH:    obs.H("detect.pipeline.csp.seconds"),
		metricH: obs.H("detect.pipeline.metric.seconds"),
		u8H:     obs.H("detect.pipeline.u8.seconds"),
	}
}

// scalerFor returns the prepared scaler for one full resize geometry,
// built once and shared across the batch.
func (p *Pipeline) scalerFor(srcW, srcH, dstW, dstH int, opts scaling.Options) (*scaling.Scaler, error) {
	return p.scalers.GetOrBuild(scalerKey{srcW, srcH, dstW, dstH, opts}, func() (*scaling.Scaler, error) {
		return scaling.NewScaler(srcW, srcH, dstW, dstH, opts)
	})
}

// planFor returns the forward 2-D FFT plan for one geometry, built once
// and shared across the batch.
func (p *Pipeline) planFor(w, h int) (*fourier.Plan2D, error) {
	return p.plans.GetOrBuild(geomKey{w, h}, func() (*fourier.Plan2D, error) {
		return fourier.Plan2DFor(w, h)
	})
}

// intermediates opens a fresh per-image memo table over img.
func (p *Pipeline) intermediates(img *imgcore.Image) *Intermediates {
	return &Intermediates{pipe: p, img: img, entries: make(map[stageKey]*memoEntry)}
}

// Intermediates is the per-image memo table of the stage DAG. Scorers
// request substrates from it; the first request computes, every later
// request — from any goroutine — reuses the result. release returns the
// pooled buffers behind the memoized values, so the table and everything
// it handed out must not be used afterwards.
type Intermediates struct {
	pipe *Pipeline
	img  *imgcore.Image

	mu      sync.Mutex
	entries map[stageKey]*memoEntry

	// hits/misses mirror the pipe.memo obs counters but always count, so
	// tests can pin exactly-once computation under -tags noobs too.
	// borrows counts pooled buffers handed to this request (one per
	// registered release), the pool-custody figure the flight recorder
	// reports per image.
	hits, misses, borrows atomic.Int64

	relMu    sync.Mutex
	released []func()
}

// Image returns the image the table memoizes over.
func (in *Intermediates) Image() *imgcore.Image { return in.img }

// memo returns the stage value for key, computing it at most once.
func (in *Intermediates) memo(key stageKey, compute func() (any, error)) (any, error) {
	in.mu.Lock()
	e, ok := in.entries[key]
	if !ok {
		e = &memoEntry{}
		in.entries[key] = e
	}
	in.mu.Unlock()
	first := false
	e.once.Do(func() {
		first = true
		e.val, e.err = compute()
	})
	if first {
		in.misses.Add(1)
		in.pipe.memo.Miss()
	} else {
		in.hits.Add(1)
		in.pipe.memo.Hit()
	}
	return e.val, e.err
}

// deferRelease registers a cleanup to run when the request finishes.
//
//declint:transfers
func (in *Intermediates) deferRelease(f func()) {
	in.borrows.Add(1)
	in.relMu.Lock()
	in.released = append(in.released, poolTraceWrap(f))
	in.relMu.Unlock()
}

// release returns every pooled buffer the table handed out. Safe to call
// after parallel.Do/For over the scorers returned: the parallel substrate
// waits for in-flight tasks even on error or cancellation.
func (in *Intermediates) release() {
	in.relMu.Lock()
	fs := in.released
	in.released = nil
	in.relMu.Unlock()
	for _, f := range fs {
		f()
	}
}

// pixPool recycles the pixel planes of pooled stage outputs. Buffers are
// not zeroed on reuse: every stage fully overwrites its output (grayInto
// writes every sample; ResizeInto's passes assign every sample).
var pixPool = sync.Pool{New: func() any { return new([]float64) }}

// pooledImage draws an image of the given geometry from the pixel pool.
// The caller must hand the returned put func to deferRelease (or call it)
// exactly once.
//
//declint:owns result 1
func pooledImage(w, h, c int) (img *imgcore.Image, put func()) {
	n := w * h * c
	bp := pixPool.Get().(*[]float64)
	b := *bp
	if cap(b) < n {
		b = make([]float64, n)
	}
	*bp = b[:n]
	return &imgcore.Image{W: w, H: h, C: c, Pix: *bp}, poolTraceWrap(func() { pixPool.Put(bp) })
}

// grayInto writes the BT.601 luminance of a 3-channel pixel plane into
// dst (len(dst)·3 == len(pix)), with the exact weights and expression of
// imgcore's Gray so the pipeline's gray plane is bit-identical to the
// legacy path's.
//
//declint:hot
func grayInto(dst, pix []float64) {
	for i := range dst {
		r := pix[i*3]
		g := pix[i*3+1]
		b := pix[i*3+2]
		dst[i] = 0.299*r + 0.587*g + 0.114*b
	}
}

// grayLUT holds the 256 possible products of each BT.601 weight with an
// 8-bit intensity: grayLUT[c][v] = weight_c · float64(v), the exact
// multiplication grayInto performs on integral samples.
var grayLUT = func() (lut [3][256]float64) {
	for v := 0; v < 256; v++ {
		lut[0][v] = 0.299 * float64(v)
		lut[1][v] = 0.587 * float64(v)
		lut[2][v] = 0.114 * float64(v)
	}
	return
}()

// grayIntoU8 is grayInto over the 8-bit view: three table lookups replace
// three multiplies per pixel. Each lookup IS the float64 product grayInto
// would compute (the LUT stores weight·float64(v) for every v), and the
// additions keep grayInto's left-to-right order, so the output is
// bit-identical to grayInto on the widened samples.
//
//declint:hot
func grayIntoU8(dst []float64, pix []uint8) {
	for i := range dst {
		dst[i] = grayLUT[0][pix[i*3]] + grayLUT[1][pix[i*3+1]] + grayLUT[2][pix[i*3+2]]
	}
}

// u8View returns the lossless 8-bit view of the image, computed once per
// image, or nil when any sample is fractional or out of [0, 255]. Every
// real detection input (decoded PNGs, quantized attack outputs) has the
// view; synthetic float imagery falls back to the float64 stages.
func (in *Intermediates) u8View(ctx context.Context) (*imgcore.U8Image, error) {
	v, err := in.memo(stageKey{kind: stageU8}, func() (any, error) {
		_, st := obs.StartStage(ctx, "pipeline.u8", in.pipe.u8H)
		u, ok := in.img.ToU8()
		st.End()
		if !ok {
			return (*imgcore.U8Image)(nil), nil
		}
		return u, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*imgcore.U8Image), nil
}

// gray returns the single-channel luminance view of the image: the image
// itself when it is already single-channel, otherwise a pooled BT.601
// conversion computed once per image.
func (in *Intermediates) gray(ctx context.Context) (*imgcore.Image, error) {
	v, err := in.memo(stageKey{kind: stageGray}, func() (any, error) {
		if in.img.C == 1 {
			return in.img, nil
		}
		if in.img.C != 3 {
			return nil, fmt.Errorf("detect: cannot gray %d-channel image", in.img.C)
		}
		u, err := in.u8View(ctx)
		if err != nil {
			return nil, err
		}
		_, st := obs.StartStage(ctx, "pipeline.gray", in.pipe.grayH)
		g, put := pooledImage(in.img.W, in.img.H, 1)
		in.deferRelease(put)
		if u != nil {
			grayIntoU8(g.Pix, u.Pix)
		} else {
			grayInto(g.Pix, in.img.Pix)
		}
		st.End()
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*imgcore.Image), nil
}

// roundTrip returns the Method-1 reconstruction for one downscale
// geometry: img downscaled to (key.dstW × key.dstH) and upscaled back to
// its own size, computed once per (geometry, options).
func (in *Intermediates) roundTrip(ctx context.Context, key stageKey) (*imgcore.Image, error) {
	v, err := in.memo(key, func() (any, error) {
		img := in.img
		downScaler, err := in.pipe.scalerFor(img.W, img.H, key.dstW, key.dstH, key.sopts)
		if err != nil {
			return nil, fmt.Errorf("detect: scaling downscale: %w", err)
		}
		upScaler, err := in.pipe.scalerFor(key.dstW, key.dstH, img.W, img.H, key.sopts)
		if err != nil {
			return nil, fmt.Errorf("detect: scaling upscale: %w", err)
		}
		// Quantized mode: the downscale (the only pass whose input is
		// 8-bit) runs through the Q1.15 fixed-point resize. The upscale
		// input is the float64 intermediate, so it stays on the float
		// path either way.
		var u8in *imgcore.U8Image
		if in.pipe.quantized.Load() {
			if u8in, err = in.u8View(ctx); err != nil {
				return nil, err
			}
		}
		_, st := obs.StartStage(ctx, "pipeline.downscale", in.pipe.downH)
		down, putDown := pooledImage(key.dstW, key.dstH, img.C)
		if u8in != nil {
			err = downScaler.ResizeU8Into(ctx, u8in, down)
		} else {
			err = downScaler.ResizeInto(ctx, img, down)
		}
		st.End()
		if err != nil {
			putDown()
			return nil, fmt.Errorf("detect: scaling downscale: %w", err)
		}
		_, st = obs.StartStage(ctx, "pipeline.upscale", in.pipe.upH)
		up, putUp := pooledImage(img.W, img.H, img.C)
		err = upScaler.ResizeInto(ctx, down, up)
		st.End()
		putDown()
		if err != nil {
			putUp()
			return nil, fmt.Errorf("detect: scaling upscale: %w", err)
		}
		in.deferRelease(putUp)
		return up, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*imgcore.Image), nil
}

// minFiltered returns the Method-2 erosion of the image for one window
// size, computed once per window. Images with an 8-bit view run the
// uint8 vHGW kernel (integer comparisons order exactly like their
// float64 images, so the widened result is bit-identical to MinimumCtx).
func (in *Intermediates) minFiltered(ctx context.Context, window int) (*imgcore.Image, error) {
	v, err := in.memo(stageKey{kind: stageMinFilter, window: window}, func() (any, error) {
		u, err := in.u8View(ctx)
		if err != nil {
			return nil, err
		}
		if u != nil {
			_, st := obs.StartStage(ctx, "pipeline.minfilter", in.pipe.minH)
			fu, err := filtering.MinimumU8Ctx(ctx, u, window)
			if err != nil {
				st.End()
				return nil, fmt.Errorf("detect: minimum filter: %w", err)
			}
			f, put := pooledImage(in.img.W, in.img.H, in.img.C)
			in.deferRelease(put)
			err = imgcore.FromU8Into(fu, f)
			st.End()
			if err != nil {
				return nil, fmt.Errorf("detect: minimum filter: %w", err)
			}
			return f, nil
		}
		_, st := obs.StartStage(ctx, "pipeline.minfilter", in.pipe.minH)
		f, err := filtering.MinimumCtx(ctx, in.img, window)
		st.End()
		if err != nil {
			return nil, fmt.Errorf("detect: minimum filter: %w", err)
		}
		return f, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*imgcore.Image), nil
}

// spectrum returns the centered log-magnitude spectrum of the luminance
// plane, computed once per image through the batch-shared FFT plan.
func (in *Intermediates) spectrum(ctx context.Context) ([]float64, error) {
	v, err := in.memo(stageKey{kind: stageSpectrum}, func() (any, error) {
		g, err := in.gray(ctx)
		if err != nil {
			return nil, err
		}
		plan, err := in.pipe.planFor(g.W, g.H)
		if err != nil {
			return nil, fmt.Errorf("steg: spectrum: %w", err)
		}
		_, st := obs.StartStage(ctx, "pipeline.spectrum", in.pipe.specH)
		spec := make([]float64, g.W*g.H)
		err = plan.CenteredSpectrumInto(ctx, g.Pix, spec)
		st.End()
		if err != nil {
			return nil, fmt.Errorf("steg: spectrum: %w", err)
		}
		return spec, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// csp returns the Method-3 centered-spectrum-point count under opts,
// computed once per resolved option set on the shared spectrum.
func (in *Intermediates) csp(ctx context.Context, opts steg.Options) (int, error) {
	key := stageKey{kind: stageCSP, gopts: opts.Resolved(in.img.W, in.img.H)}
	v, err := in.memo(key, func() (any, error) {
		spec, err := in.spectrum(ctx)
		if err != nil {
			return nil, err
		}
		_, st := obs.StartStage(ctx, "pipeline.csp", in.pipe.cspH)
		a, err := steg.AnalyzeSpectrum(spec, in.img.W, in.img.H, key.gopts)
		st.End()
		if err != nil {
			return nil, err
		}
		return a.Count, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(int), nil
}

// ssimRef returns the prepared SSIM reference of the image's luminance
// plane, built once per image and scored against every method's
// reconstruction.
func (in *Intermediates) ssimRef(ctx context.Context) (*metrics.SSIMRef, error) {
	v, err := in.memo(stageKey{kind: stageSSIMRef}, func() (any, error) {
		g, err := in.gray(ctx)
		if err != nil {
			return nil, err
		}
		_, st := obs.StartStage(ctx, "pipeline.metric", in.pipe.metricH)
		ref, err := metrics.NewSSIMRef(ctx, g, metrics.DefaultSSIM())
		st.End()
		if err != nil {
			return nil, err
		}
		in.deferRelease(ref.Release)
		return ref, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*metrics.SSIMRef), nil
}

// mseAgainst returns the MSE between the image and the substrate behind
// sub, computed once per substrate and shared by the MSE and PSNR scores.
func (in *Intermediates) mseAgainst(ctx context.Context, sub stageKey, other *imgcore.Image) (float64, error) {
	key := stageKey{kind: stageMSE, of: sub.kind, dstW: sub.dstW, dstH: sub.dstH, sopts: sub.sopts, window: sub.window}
	v, err := in.memo(key, func() (any, error) {
		_, st := obs.StartStage(ctx, "pipeline.metric", in.pipe.metricH)
		m, err := metrics.MSE(in.img, other)
		st.End()
		if err != nil {
			return nil, err
		}
		return m, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// scoreAgainst scores the image against one reconstructed substrate with
// the given metric, sharing the MSE between MSE and PSNR and the prepared
// reference between every SSIM score.
func (in *Intermediates) scoreAgainst(ctx context.Context, m Metric, sub stageKey, other *imgcore.Image) (float64, error) {
	switch m {
	case MSE:
		return in.mseAgainst(ctx, sub, other)
	case PSNR:
		mse, err := in.mseAgainst(ctx, sub, other)
		if err != nil {
			return 0, err
		}
		return metrics.PSNRFromMSE(mse), nil
	case SSIM:
		ref, err := in.ssimRef(ctx)
		if err != nil {
			return 0, err
		}
		_, st := obs.StartStage(ctx, "pipeline.metric", in.pipe.metricH)
		v, err := ref.ScoreCtx(ctx, other)
		st.End()
		return v, err
	default:
		return 0, fmt.Errorf("detect: unsupported metric %v", m)
	}
}

// ScorePipeline implements PipelineScorer: the round trip is a memoized
// substrate shared by every scaling scorer of the same geometry, and the
// score derives from the shared MSE/SSIM machinery.
func (s *ScalingScorer) ScorePipeline(ctx context.Context, in *Intermediates) (float64, error) {
	dstW, dstH := s.scaler.DstSize()
	key := stageKey{kind: stageRoundTrip, dstW: dstW, dstH: dstH, sopts: s.scaler.Options()}
	up, err := in.roundTrip(ctx, key)
	if err != nil {
		return 0, err
	}
	return in.scoreAgainst(ctx, s.metric, key, up)
}

// ScorePipeline implements PipelineScorer: the erosion is a memoized
// substrate shared by every filtering scorer of the same window.
func (s *FilteringScorer) ScorePipeline(ctx context.Context, in *Intermediates) (float64, error) {
	key := stageKey{kind: stageMinFilter, window: s.window}
	f, err := in.minFiltered(ctx, s.window)
	if err != nil {
		return 0, err
	}
	return in.scoreAgainst(ctx, s.metric, key, f)
}

// ScorePipeline implements PipelineScorer: the spectrum is computed once
// per image and the component count once per resolved option set.
//
//declint:nan-ok delegates to the memoized CSP stage; NaN/Inf totality is pinned by FuzzPipelineDetect
func (s *StegScorer) ScorePipeline(ctx context.Context, in *Intermediates) (float64, error) {
	n, err := in.csp(ctx, s.opts)
	if err != nil {
		return 0, fmt.Errorf("detect: csp: %w", err)
	}
	return float64(n), nil
}
