package scaling

import (
	"context"
	"testing"

	"decamouflage/internal/parallel"
	"decamouflage/internal/testutil"
)

// TestCoeffForMatchesBuildCoeff: the cached operator must be structurally
// identical (indices and bit-exact weights) to a fresh build for every
// algorithm, direction, and coordinate mode.
func TestCoeffForMatchesBuildCoeff(t *testing.T) {
	resetCoeffCache()
	defer resetCoeffCache()
	algs := []Algorithm{Nearest, Bilinear, Bicubic, Lanczos, Area}
	dims := [][2]int{{64, 16}, {16, 64}, {17, 5}, {1, 7}, {9, 9}}
	for _, alg := range algs {
		for _, nm := range dims {
			for _, coord := range []CoordMode{0, HalfPixel, AlignCorners, Asymmetric} {
				opts := Options{Algorithm: alg, Coord: coord}
				want, err := BuildCoeff(nm[0], nm[1], opts)
				if err != nil {
					t.Fatalf("%v %v n=%d m=%d: %v", alg, coord, nm[0], nm[1], err)
				}
				got, err := CoeffFor(nm[0], nm[1], opts)
				if err != nil {
					t.Fatal(err)
				}
				assertCoeffEqual(t, got, want)
			}
		}
	}
}

func assertCoeffEqual(t *testing.T, got, want *Coeff) {
	t.Helper()
	if got.N != want.N || got.M != want.M || len(got.Rows) != len(want.Rows) {
		t.Fatalf("shape mismatch: got %dx%d/%d rows, want %dx%d/%d rows",
			got.N, got.M, len(got.Rows), want.N, want.M, len(want.Rows))
	}
	for i := range want.Rows {
		gr, wr := got.Rows[i], want.Rows[i]
		if len(gr.Idx) != len(wr.Idx) {
			t.Fatalf("row %d: tap count %d vs %d", i, len(gr.Idx), len(wr.Idx))
		}
		for k := range wr.Idx {
			if gr.Idx[k] != wr.Idx[k] {
				t.Fatalf("row %d tap %d: index %d vs %d", i, k, gr.Idx[k], wr.Idx[k])
			}
			if !testutil.BitEqual(gr.W[k], wr.W[k]) {
				t.Fatalf("row %d tap %d: weight %v vs %v", i, k, gr.W[k], wr.W[k])
			}
		}
	}
}

// TestCoeffForSharingAndKeying: repeat requests must return the identical
// instance; any change to a weight-affecting option must miss; Coord 0 and
// HalfPixel must share an entry.
func TestCoeffForSharingAndKeying(t *testing.T) {
	resetCoeffCache()
	defer resetCoeffCache()
	base := Options{Algorithm: Bilinear}
	a, err := CoeffFor(64, 16, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoeffFor(64, 16, base)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeat CoeffFor returned a distinct instance (cache miss)")
	}
	hp, err := CoeffFor(64, 16, Options{Algorithm: Bilinear, Coord: HalfPixel})
	if err != nil {
		t.Fatal(err)
	}
	if hp != a {
		t.Fatal("Coord 0 and HalfPixel must share one cache entry")
	}
	distinct := []Options{
		{Algorithm: Bicubic},
		{Algorithm: Bilinear, Antialias: true},
		{Algorithm: Bilinear, Coord: AlignCorners},
		{Algorithm: Bilinear, Coord: Asymmetric},
	}
	for _, opts := range distinct {
		c, err := CoeffFor(64, 16, opts)
		if err != nil {
			t.Fatal(err)
		}
		if c == a {
			t.Fatalf("options %+v aliased the base cache entry", opts)
		}
	}
	if swapped, err := CoeffFor(16, 64, base); err != nil {
		t.Fatal(err)
	} else if swapped == a {
		t.Fatal("swapped dimensions aliased the base cache entry")
	}
}

// TestCoeffForErrors: invalid requests must fail without poisoning the
// cache.
func TestCoeffForErrors(t *testing.T) {
	resetCoeffCache()
	defer resetCoeffCache()
	if _, err := CoeffFor(0, 4, Options{Algorithm: Bilinear}); err == nil {
		t.Fatal("CoeffFor accepted n=0")
	}
	if _, err := CoeffFor(4, 4, Options{Algorithm: Bilinear, Coord: CoordMode(99)}); err == nil {
		t.Fatal("CoeffFor accepted unknown coordinate mode")
	}
	if got := coeffCacheLen(); got != 0 {
		t.Fatalf("failed builds left %d cache entries", got)
	}
}

// TestCoeffCacheBounded: flooding with distinct geometries must never grow
// the cache past its cap, and a refetched (possibly evicted) entry must
// still match a fresh build.
func TestCoeffCacheBounded(t *testing.T) {
	resetCoeffCache()
	defer resetCoeffCache()
	for n := 2; n < 2+2*coeffCacheCap; n++ {
		if _, err := CoeffFor(n, 7, Options{Algorithm: Bilinear}); err != nil {
			t.Fatal(err)
		}
	}
	if got := coeffCacheLen(); got > coeffCacheCap {
		t.Fatalf("cache grew to %d entries, cap is %d", got, coeffCacheCap)
	}
	want, err := BuildCoeff(2, 7, Options{Algorithm: Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CoeffFor(2, 7, Options{Algorithm: Bilinear})
	if err != nil {
		t.Fatal(err)
	}
	assertCoeffEqual(t, got, want)
}

// TestCoeffForConcurrent exercises concurrent lookups and builds through
// the repository's parallel substrate; under -race this checks the
// build-outside-lock path.
func TestCoeffForConcurrent(t *testing.T) {
	resetCoeffCache()
	defer resetCoeffCache()
	dims := [][2]int{{64, 16}, {16, 64}, {17, 5}, {33, 9}, {9, 33}, {100, 10}}
	err := parallel.For(context.Background(), 6*len(dims), func(lo, hi int) error {
		for job := lo; job < hi; job++ {
			nm := dims[job%len(dims)]
			c, err := CoeffFor(nm[0], nm[1], Options{Algorithm: Bicubic})
			if err != nil {
				return err
			}
			if c.N != nm[0] || c.M != nm[1] {
				t.Errorf("got %dx%d operator for request %dx%d", c.N, c.M, nm[0], nm[1])
			}
		}
		return nil
	}, parallel.Workers(8), parallel.Grain(1))
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBuildCoeff64to16 times a fresh coefficient build — the cost
// CoeffFor amortizes away.
func BenchmarkBuildCoeff64to16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCoeff(64, 16, Options{Algorithm: Bicubic}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoeffFor64to16 times the steady-state cache hit.
func BenchmarkCoeffFor64to16(b *testing.B) {
	resetCoeffCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CoeffFor(64, 16, Options{Algorithm: Bicubic}); err != nil {
			b.Fatal(err)
		}
	}
}
