// Fixture: event-in-span coverage. Traced opens a span before recording;
// Untraced never opens one; Late opens it only after the event is out;
// Waived is annotated.
package detect

import "eventspan/internal/obs"

// Traced opens a stage span before emitting its wide event: silent.
func Traced() {
	sp := obs.StartStage("detect")
	defer sp.End()
	obs.Events().Record(obs.Event{Name: "detect"})
}

// Untraced emits a wide event with no span anywhere in the function.
func Untraced() {
	obs.Events().Record(obs.Event{Name: "detect"})
}

// Late opens its span only after the event has been emitted, so the
// event still carries no trace ID.
func Late() {
	obs.Events().Record(obs.Event{Name: "late"})
	sp := obs.StartSpan("late")
	defer sp.End()
}

// Waived emits without a span but carries an annotation: suppressed.
func Waived() {
	//declint:ignore obscover boot-time event, no request to trace
	obs.Events().Record(obs.Event{Name: "boot"})
}
