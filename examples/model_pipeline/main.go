// Model pipeline: the paper's Figure 2 end to end, with a real (tiny)
// CNN in the loop. A shape classifier takes 16x16 inputs behind a bilinear
// downscaler. The adversary embeds a "cross" into a "circle" photo; the
// camera image still looks like a circle, but after preprocessing the
// model sees — and classifies — a cross. Decamouflage, installed in front
// of the scaler, rejects the attack image before it reaches the model.
//
// Run with:
//
//	go run ./examples/model_pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"decamouflage"
	"decamouflage/internal/cnn"
	"decamouflage/internal/metrics"
)

const (
	srcSize   = 64 // camera resolution
	modelSize = 16 // CNN input (the attack surface)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("model-pipeline: ")

	// 1. Train the downstream model on clean shapes.
	model, err := cnn.NewNetwork(cnn.Config{
		InputW: modelSize, InputH: modelSize,
		Classes: cnn.NumShapeClasses, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train := cnn.ShapeDataset(40, modelSize, 100)
	if _, err := model.Fit(train, cnn.TrainOptions{Epochs: 20, LearningRate: 0.005, Seed: 2}); err != nil {
		log.Fatal(err)
	}
	test := cnn.ShapeDataset(15, modelSize, 900)
	acc, err := model.Accuracy(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model trained: held-out accuracy %.0f%% over %d classes\n", acc*100, cnn.NumShapeClasses)

	// 2. The deployment pipeline: camera (64x64) -> bilinear downscale ->
	// model (16x16).
	scaler, err := decamouflage.NewScaler(srcSize, srcSize, modelSize, modelSize, decamouflage.Bilinear)
	if err != nil {
		log.Fatal(err)
	}
	classify := func(cameraImg *decamouflage.Image) (string, error) {
		down, err := scaler.Resize(cameraImg)
		if err != nil {
			return "", err
		}
		pred, _, err := model.Predict(down.Quantize8())
		if err != nil {
			return "", err
		}
		return cnn.ShapeClassName(pred), nil
	}

	// 3. Benign behaviour: a circle photo classifies as a circle.
	cover := cnn.ShapeImage(cnn.ClassCircle, srcSize, 777)
	got, err := classify(cover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benign camera image -> model sees: %s\n", got)

	// 4. The attack: embed a cross so the model sees a cross while the
	// camera image still looks like the circle.
	target := cnn.ShapeImage(cnn.ClassCross, modelSize, 779)
	res, err := decamouflage.CraftAttack(cover, target, scaler, 2)
	if err != nil {
		log.Fatal(err)
	}
	got, err = classify(res.Attack)
	if err != nil {
		log.Fatal(err)
	}
	ssim, err := metrics.SSIM(res.Attack, cover)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack camera image -> model sees: %s (human still sees the circle: SSIM to cover %.2f)\n", got, ssim)
	if got != "cross" {
		fmt.Println("note: attack did not flip the model on this seed")
	}

	// 5. Install Decamouflage in front of the scaler (black-box
	// calibration on benign shape photos only).
	var sScores, fScores []float64
	for i := 0; i < 30; i++ {
		img := cnn.ShapeImage(i%cnn.NumShapeClasses, srcSize, int64(2000+i))
		v, err := decamouflage.ScoreScaling(scaler, decamouflage.MSE, img)
		if err != nil {
			log.Fatal(err)
		}
		sScores = append(sScores, v)
		v, err = decamouflage.ScoreFiltering(2, decamouflage.SSIM, img)
		if err != nil {
			log.Fatal(err)
		}
		fScores = append(fScores, v)
	}
	sTh, err := decamouflage.CalibrateBlackBox(sScores, 3, decamouflage.MSE)
	if err != nil {
		log.Fatal(err)
	}
	fTh, err := decamouflage.CalibrateBlackBox(fScores, 3, decamouflage.SSIM)
	if err != nil {
		log.Fatal(err)
	}
	guard, err := decamouflage.NewEnsemble(scaler, sTh, fTh)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for name, img := range map[string]*decamouflage.Image{
		"benign": cover,
		"attack": res.Attack,
	} {
		v, err := decamouflage.Detect(ctx, guard, img)
		if err != nil {
			log.Fatal(err)
		}
		if v.Attack {
			fmt.Printf("guarded pipeline: %s image REJECTED before the model (votes %d/%d)\n",
				name, v.Votes, len(v.Verdicts))
		} else {
			cls, err := classify(img)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("guarded pipeline: %s image accepted -> model sees: %s\n", name, cls)
		}
	}
}
