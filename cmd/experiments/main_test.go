package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	err := run([]string{"-run", "T1", "-n", "4", "-src", "32x32", "-dst", "8x8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallTable(t *testing.T) {
	err := run([]string{"-run", "T6", "-n", "4", "-src", "64x64", "-dst", "16x16"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-src", "junk"}); err == nil {
		t.Error("bad src accepted")
	}
	if err := run([]string{"-dst", "junk"}); err == nil {
		t.Error("bad dst accepted")
	}
	if err := run([]string{"-alg", "junk"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-run", "NOPE", "-n", "2"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
